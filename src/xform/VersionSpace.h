//===- xform/VersionSpace.h - N-dimensional version spaces ------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// The paper presents Original/Bounded/Aggressive as one instance of
/// dynamic feedback: the technique itself samples any finite set of
/// generated code versions, and the Section 5 worst-case bound is stated
/// for N versions. A VersionSpace is that finite set, produced by composing
/// independent adaptation dimensions:
///  - dimension 1, synchronization policy (xform::PolicyKind), which
///    changes the generated section code;
///  - dimension 2, loop scheduling (rt::SchedSpec), which changes how the
///    dispatch loop assigns iterations to processors.
/// Each point of the product is a VersionDescriptor. The default space is
/// exactly the paper's: the three synchronization policies under dynamic
/// self-scheduling, in sampling order.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_XFORM_VERSIONSPACE_H
#define DYNFB_XFORM_VERSIONSPACE_H

#include "rt/Sched.h"
#include "xform/Policy.h"

#include <optional>
#include <string>
#include <vector>

namespace dynfb::xform {

/// One point of a version space: a coordinate per adaptation dimension.
struct VersionDescriptor {
  PolicyKind Policy = PolicyKind::Original;
  rt::SchedSpec Sched;

  /// Display name: the policy name, plus the scheduling coordinate when it
  /// is not the default ("Original", "Original+chunk8"). For the default
  /// space this matches the paper's table labels exactly.
  std::string name() const;

  /// Suffix for synthetic names ("$orig", "$orig$c8"). Only the policy part
  /// materializes distinct method bodies; the scheduling part binds at
  /// dispatch.
  std::string suffix() const;

  friend bool operator==(const VersionDescriptor &A,
                         const VersionDescriptor &B) {
    return A.Policy == B.Policy && A.Sched == B.Sched;
  }
  friend bool operator!=(const VersionDescriptor &A,
                         const VersionDescriptor &B) {
    return !(A == B);
  }
};

/// An ordered, duplicate-free set of version descriptors. Order is sampling
/// order: the synchronization dimension varies slowest (policy-major), so
/// the first and last descriptors are the extreme policies the early
/// cut-off refinement wants sampled first.
class VersionSpace {
public:
  /// The default space: {Original, Bounded, Aggressive} x {dynamic}.
  VersionSpace() : VersionSpace(product({AllPolicies[0], AllPolicies[1],
                                         AllPolicies[2]},
                                        {rt::SchedSpec::dynamic()})) {}

  /// The cross product of the two dimensions, policy-major. Both dimension
  /// value lists must be non-empty and duplicate-free (checked).
  static VersionSpace product(std::vector<PolicyKind> Policies,
                              std::vector<rt::SchedSpec> Scheds);

  /// Parses a dimension specification, the grammar behind
  /// `dynfb-run --dimensions=sync,sched --chunks=8,64`:
  ///  - \p Dimensions: comma-separated dimension names; "sync" alone yields
  ///    the default space, adding "sched" crosses in the scheduling
  ///    dimension (dynamic plus one chunked strategy per chunk size).
  ///  - \p Chunks: comma-separated chunk sizes (>= 2), only meaningful --
  ///    and required to be empty otherwise -- with the "sched" dimension.
  /// Returns the space, or nullopt with a one-line diagnostic in \p Error.
  static std::optional<VersionSpace> parse(const std::string &Dimensions,
                                           const std::string &Chunks,
                                           std::string &Error);

  const std::vector<VersionDescriptor> &descriptors() const {
    return Descriptors;
  }
  size_t size() const { return Descriptors.size(); }

  /// The distinct values of each dimension, in first-appearance order.
  std::vector<PolicyKind> policies() const;
  std::vector<rt::SchedSpec> scheds() const;

  /// True for the paper's exact configuration (the default constructor),
  /// for which all seed tables and figures must be byte-identical.
  bool isDefault() const;

private:
  explicit VersionSpace(std::vector<VersionDescriptor> Ds)
      : Descriptors(std::move(Ds)) {}

  std::vector<VersionDescriptor> Descriptors;
};

} // namespace dynfb::xform

#endif // DYNFB_XFORM_VERSIONSPACE_H
