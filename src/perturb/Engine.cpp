//===- perturb/Engine.cpp -------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "perturb/Engine.h"

#include "obs/Metrics.h"
#include "support/Random.h"

#include <cmath>

using namespace dynfb;
using namespace dynfb::perturb;

namespace {

/// Counts one activation (a query answered with a non-neutral effect) of
/// the given fault family. Cached registration, relaxed increment: the
/// queries sit on the simulator's per-op path.
void noteActivation(FaultKind Kind) {
  static obs::Counter &Slowdowns =
      obs::globalMetrics().counter("perturb.slowdown_activations");
  static obs::Counter &LockHolds =
      obs::globalMetrics().counter("perturb.lock_hold_activations");
  static obs::Counter &Contention =
      obs::globalMetrics().counter("perturb.contention_activations");
  static obs::Counter &Timer =
      obs::globalMetrics().counter("perturb.timer_noise_activations");
  static obs::Counter &PhaseShifts =
      obs::globalMetrics().counter("perturb.phase_shift_activations");
  switch (Kind) {
  case FaultKind::ProcSlowdown:
    Slowdowns.add();
    return;
  case FaultKind::LockHoldSpike:
    LockHolds.add();
    return;
  case FaultKind::ContentionBurst:
    Contention.add();
    return;
  case FaultKind::TimerNoise:
    Timer.add();
    return;
  case FaultKind::PhaseShift:
    PhaseShifts.add();
    return;
  }
}

} // namespace

PerturbationEngine::PerturbationEngine(PerturbationSchedule Sched)
    : Sched(std::move(Sched)) {}

bool PerturbationEngine::mayAffect(const std::string &Section) const {
  for (const FaultEvent &E : Sched.Events)
    if (E.appliesToSection(Section))
      return true;
  return false;
}

double PerturbationEngine::computeScale(const std::string &Section,
                                        unsigned Proc, rt::Nanos T) const {
  double Scale = 1.0;
  for (const FaultEvent &E : Sched.Events) {
    if (!E.activeAt(T) || !E.appliesToSection(Section))
      continue;
    if (E.Kind == FaultKind::ProcSlowdown && E.appliesToProc(Proc)) {
      Scale *= E.Factor;
      noteActivation(FaultKind::ProcSlowdown);
    } else if (E.Kind == FaultKind::PhaseShift) {
      Scale *= E.Factor;
      noteActivation(FaultKind::PhaseShift);
    }
  }
  return Scale;
}

rt::Nanos PerturbationEngine::lockHoldExtra(const std::string &Section,
                                            rt::Nanos T) const {
  rt::Nanos Extra = 0;
  for (const FaultEvent &E : Sched.Events)
    if (E.Kind == FaultKind::LockHoldSpike && E.activeAt(T) &&
        E.appliesToSection(Section)) {
      Extra += E.ExtraNanos;
      noteActivation(FaultKind::LockHoldSpike);
    }
  return Extra;
}

rt::Nanos PerturbationEngine::contentionExtra(const std::string &Section,
                                              uint64_t Obj,
                                              rt::Nanos T) const {
  rt::Nanos Extra = 0;
  for (const FaultEvent &E : Sched.Events)
    if (E.Kind == FaultKind::ContentionBurst && E.activeAt(T) &&
        E.appliesToSection(Section) && E.appliesToObject(Obj)) {
      Extra += E.ExtraNanos;
      noteActivation(FaultKind::ContentionBurst);
    }
  return Extra;
}

rt::Nanos PerturbationEngine::timerNoise(const std::string &Section,
                                         unsigned Proc, rt::Nanos T) const {
  rt::Nanos Noise = 0;
  for (const FaultEvent &E : Sched.Events) {
    if (E.Kind != FaultKind::TimerNoise || !E.activeAt(T) ||
        !E.appliesToSection(Section) || E.AmplitudeNanos <= 0)
      continue;
    // Hash (seed, proc, time) into a uniform value in [-1, 1).
    SplitMix64 SM(Sched.Seed ^ (static_cast<uint64_t>(Proc) * 0x9e3779b9ULL) ^
                  static_cast<uint64_t>(T));
    const double U = static_cast<double>(SM.next() >> 11) * 0x1.0p-53;
    Noise += static_cast<rt::Nanos>(
        std::llround((2.0 * U - 1.0) * static_cast<double>(E.AmplitudeNanos)));
    noteActivation(FaultKind::TimerNoise);
  }
  return Noise;
}
