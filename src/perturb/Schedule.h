//===- perturb/Schedule.h - Fault-injection schedules -----------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic, schedule-driven environmental perturbations for the
/// simulated machine. A schedule is a list of fault events, each active over
/// a half-open virtual-time window and optionally restricted to one section,
/// one processor, or one lock-object range. Everything is specified in
/// virtual time and derived from a fixed seed, so perturbed runs are exactly
/// reproducible across hosts -- the fault-injection discipline of SiL-style
/// robustness experiments, applied to the paper's simulator.
///
/// Schedules can be authored programmatically or parsed from a compact
/// command-line spec (see parseSchedule for the grammar).
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_PERTURB_SCHEDULE_H
#define DYNFB_PERTURB_SCHEDULE_H

#include "rt/Time.h"

#include <optional>
#include <string>
#include <vector>

namespace dynfb::perturb {

/// The injectable fault classes.
enum class FaultKind {
  /// Compute durations of the matching processors scale by Factor
  /// (a processor slowed by OS interference, thermal throttling, ...).
  ProcSlowdown,
  /// Every lock acquire/release construct costs ExtraNanos more (lock
  /// cache line bouncing, slow remote directory).
  LockHoldSpike,
  /// Every successful acquire of a matching lock object additionally waits
  /// ExtraNanos, accounted as failed-acquire spinning (an external agent
  /// periodically holding the lock).
  ContentionBurst,
  /// Every timer read is perturbed by a deterministic pseudo-random jitter
  /// in [-AmplitudeNanos, +AmplitudeNanos] derived from the schedule seed.
  TimerNoise,
  /// Compute durations of all processors scale by Factor (a mid-run
  /// workload phase shift: iterations suddenly get cheaper or dearer).
  PhaseShift,
};

/// Display / spec name of a fault kind ("slowdown", "lockhold", ...).
const char *faultKindName(FaultKind K);

/// One scheduled fault: a kind, a half-open active window [Start, End) in
/// virtual nanoseconds, magnitude parameters, and optional scope filters.
struct FaultEvent {
  FaultKind Kind = FaultKind::PhaseShift;
  rt::Nanos StartNanos = 0;
  rt::Nanos EndNanos = 0;

  /// Magnitudes (which one applies depends on Kind).
  double Factor = 1.0;           ///< ProcSlowdown / PhaseShift multiplier.
  rt::Nanos ExtraNanos = 0;      ///< LockHoldSpike / ContentionBurst cost.
  rt::Nanos AmplitudeNanos = 0;  ///< TimerNoise amplitude.

  /// Scope filters; the defaults match everything.
  int Proc = -1;          ///< ProcSlowdown: processor index, -1 = all.
  int64_t ObjLo = -1;     ///< ContentionBurst: lock-object range [Lo, Hi],
  int64_t ObjHi = -1;     ///< -1/-1 = all objects.
  std::string Section;    ///< Empty = all sections.

  bool activeAt(rt::Nanos T) const { return T >= StartNanos && T < EndNanos; }
  bool appliesToSection(const std::string &S) const {
    return Section.empty() || Section == S;
  }
  bool appliesToProc(unsigned P) const {
    return Proc < 0 || static_cast<unsigned>(Proc) == P;
  }
  bool appliesToObject(uint64_t Obj) const {
    if (ObjLo < 0)
      return true;
    return static_cast<int64_t>(Obj) >= ObjLo &&
           static_cast<int64_t>(Obj) <= ObjHi;
  }
};

/// A full perturbation schedule: the event list plus the seed that drives
/// any pseudo-random component (timer noise).
struct PerturbationSchedule {
  std::vector<FaultEvent> Events;
  uint64_t Seed = 0x5eed5eed5eed5eedULL;

  bool empty() const { return Events.empty(); }

  /// Section names referenced by scope filters (for validation against the
  /// application's registered sections).
  std::vector<std::string> referencedSections() const;
};

/// Parses a schedule spec of comma-separated events:
///
///   <kind>@<start>-<end>[:key=value]...
///
/// where <kind> is one of slowdown | lockhold | contend | timernoise |
/// phaseshift, <start>/<end> are virtual times with an optional unit suffix
/// (s, ms, us, ns; default seconds; "inf" = unbounded end), and the keys are
/// factor=<F>, extra=<time>, amp=<time>, proc=<N>, obj=<Lo>-<Hi>,
/// section=<name>, seed=<N> (seed applies to the whole schedule). Examples:
///
///   phaseshift@2s-inf:factor=0.1
///   contend@0.5s-1.5s:extra=300us:obj=1-64,timernoise@0-inf:amp=5us:seed=7
///
/// Returns std::nullopt and fills \p Error with a one-line diagnostic on
/// malformed input.
std::optional<PerturbationSchedule> parseSchedule(const std::string &Spec,
                                                  std::string &Error);

/// Renders a schedule back to the spec grammar (for diagnostics and tests).
std::string renderSchedule(const PerturbationSchedule &Sched);

/// Semantic validation of a parsed schedule against the machine it will run
/// on: every proc-scoped event must reference a processor below \p NumProcs,
/// and event activation times must be non-decreasing in spec order (a
/// swapped pair almost always means a mistyped window). Returns false and
/// fills \p Error with a one-line diagnostic naming the offending event.
bool validateSchedule(const PerturbationSchedule &Sched, unsigned NumProcs,
                      std::string &Error);

} // namespace dynfb::perturb

#endif // DYNFB_PERTURB_SCHEDULE_H
