//===- perturb/Engine.h - Perturbation query engine -------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// PerturbationEngine answers the simulator's point queries against a
/// PerturbationSchedule: how much to scale a compute duration, how much
/// extra a lock construct costs, how much injected waiting an acquire
/// suffers, and the deterministic timer-read jitter -- all as pure functions
/// of (section, processor/object, virtual time), so a perturbed run is
/// exactly reproducible and a run with an empty schedule is bit-identical
/// to an unperturbed one.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_PERTURB_ENGINE_H
#define DYNFB_PERTURB_ENGINE_H

#include "perturb/Schedule.h"

#include <string>

namespace dynfb::perturb {

/// Stateless query interface over one schedule. Engines are immutable and
/// shared: one engine can drive every section of a run.
class PerturbationEngine {
public:
  explicit PerturbationEngine(PerturbationSchedule Sched);

  const PerturbationSchedule &schedule() const { return Sched; }

  /// True if any event could ever affect \p Section (cheap pre-check so the
  /// unperturbed simulation fast path stays unchanged).
  bool mayAffect(const std::string &Section) const;

  /// Multiplier for a compute duration on processor \p Proc at virtual time
  /// \p T (ProcSlowdown and PhaseShift compose multiplicatively).
  double computeScale(const std::string &Section, unsigned Proc,
                      rt::Nanos T) const;

  /// Extra cost added to each lock acquire/release construct at \p T.
  rt::Nanos lockHoldExtra(const std::string &Section, rt::Nanos T) const;

  /// Injected waiting suffered by a successful acquire of \p Obj at \p T.
  rt::Nanos contentionExtra(const std::string &Section, uint64_t Obj,
                            rt::Nanos T) const;

  /// Deterministic timer-read jitter at \p T on processor \p Proc, in
  /// [-Amplitude, +Amplitude]. Derived from the schedule seed by hashing
  /// (Proc, T): the same schedule always produces the same noise.
  rt::Nanos timerNoise(const std::string &Section, unsigned Proc,
                       rt::Nanos T) const;

private:
  const PerturbationSchedule Sched;
};

} // namespace dynfb::perturb

#endif // DYNFB_PERTURB_ENGINE_H
