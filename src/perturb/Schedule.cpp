//===- perturb/Schedule.cpp -----------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "perturb/Schedule.h"

#include "support/StringUtils.h"

#include <algorithm>
#include <cstdlib>
#include <limits>

using namespace dynfb;
using namespace dynfb::perturb;

const char *perturb::faultKindName(FaultKind K) {
  switch (K) {
  case FaultKind::ProcSlowdown:
    return "slowdown";
  case FaultKind::LockHoldSpike:
    return "lockhold";
  case FaultKind::ContentionBurst:
    return "contend";
  case FaultKind::TimerNoise:
    return "timernoise";
  case FaultKind::PhaseShift:
    return "phaseshift";
  }
  return "?";
}

std::vector<std::string> PerturbationSchedule::referencedSections() const {
  std::vector<std::string> Names;
  for (const FaultEvent &E : Events)
    if (!E.Section.empty() &&
        std::find(Names.begin(), Names.end(), E.Section) == Names.end())
      Names.push_back(E.Section);
  return Names;
}

namespace {

std::optional<FaultKind> kindFromName(const std::string &Name) {
  for (FaultKind K :
       {FaultKind::ProcSlowdown, FaultKind::LockHoldSpike,
        FaultKind::ContentionBurst, FaultKind::TimerNoise,
        FaultKind::PhaseShift})
    if (Name == faultKindName(K))
      return K;
  return std::nullopt;
}

/// Parses "<number>[s|ms|us|ns]" or "inf" into nanoseconds.
std::optional<rt::Nanos> parseTime(const std::string &Text) {
  if (Text == "inf")
    return std::numeric_limits<rt::Nanos>::max() / 2;
  const char *Begin = Text.c_str();
  char *End = nullptr;
  const double Value = std::strtod(Begin, &End);
  if (End == Begin || Value < 0)
    return std::nullopt;
  const std::string Unit(End);
  double Scale = 1e9; // Default: seconds.
  if (Unit == "s" || Unit.empty())
    Scale = 1e9;
  else if (Unit == "ms")
    Scale = 1e6;
  else if (Unit == "us")
    Scale = 1e3;
  else if (Unit == "ns")
    Scale = 1;
  else
    return std::nullopt;
  return static_cast<rt::Nanos>(Value * Scale);
}

/// Splits "<a>-<b>" at the first '-' that is not part of an exponent
/// ("1e-3s-2s" splits after "1e-3s").
std::optional<std::pair<std::string, std::string>>
splitRange(const std::string &S) {
  for (size_t I = 1; I < S.size(); ++I)
    if (S[I] == '-' && S[I - 1] != 'e' && S[I - 1] != 'E')
      return std::make_pair(S.substr(0, I), S.substr(I + 1));
  return std::nullopt;
}

std::optional<double> parseNumber(const std::string &Text) {
  const char *Begin = Text.c_str();
  char *End = nullptr;
  const double Value = std::strtod(Begin, &End);
  if (End == Begin || *End != '\0')
    return std::nullopt;
  return Value;
}

} // namespace

std::optional<PerturbationSchedule>
perturb::parseSchedule(const std::string &Spec, std::string &Error) {
  PerturbationSchedule Sched;
  if (trim(Spec).empty()) {
    Error = "empty perturbation spec";
    return std::nullopt;
  }

  for (const std::string &EventText : splitString(Spec, ',')) {
    const std::string Text = trim(EventText);
    if (Text.empty()) {
      Error = "empty event in perturbation spec";
      return std::nullopt;
    }
    const std::vector<std::string> Parts = splitString(Text, ':');

    // "<kind>@<start>-<end>" head.
    const std::vector<std::string> Head = splitString(Parts[0], '@');
    if (Head.size() != 2) {
      Error = "event '" + Text + "': expected <kind>@<start>-<end>";
      return std::nullopt;
    }
    FaultEvent E;
    if (std::optional<FaultKind> K = kindFromName(Head[0]))
      E.Kind = *K;
    else {
      Error = "unknown fault kind '" + Head[0] +
              "' (want slowdown|lockhold|contend|timernoise|phaseshift)";
      return std::nullopt;
    }
    std::optional<rt::Nanos> Start, End;
    if (const auto Window = splitRange(Head[1])) {
      Start = parseTime(Window->first);
      End = parseTime(Window->second);
    }
    if (!Start || !End || *End <= *Start) {
      Error = "event '" + Text +
              "': bad window '" + Head[1] + "' (want <start>-<end>, e.g. "
              "0.5s-2s or 1s-inf)";
      return std::nullopt;
    }
    E.StartNanos = *Start;
    E.EndNanos = *End;

    // Defaults per kind so a bare window is already meaningful.
    switch (E.Kind) {
    case FaultKind::ProcSlowdown:
      E.Factor = 4.0;
      break;
    case FaultKind::PhaseShift:
      E.Factor = 0.25;
      break;
    case FaultKind::LockHoldSpike:
      E.ExtraNanos = 10000; // 10 us per lock construct.
      break;
    case FaultKind::ContentionBurst:
      E.ExtraNanos = 100000; // 100 us per acquire.
      break;
    case FaultKind::TimerNoise:
      E.AmplitudeNanos = 5000; // +-5 us per timer read.
      break;
    }

    for (size_t I = 1; I < Parts.size(); ++I) {
      const std::vector<std::string> KV = splitString(Parts[I], '=');
      if (KV.size() != 2 || KV[0].empty() || KV[1].empty()) {
        Error = "event '" + Text + "': bad option '" + Parts[I] +
                "' (want key=value)";
        return std::nullopt;
      }
      const std::string &Key = KV[0], &Value = KV[1];
      bool Ok = true;
      if (Key == "factor") {
        const std::optional<double> F = parseNumber(Value);
        Ok = F && *F > 0 && *F <= 1e6;
        if (Ok)
          E.Factor = *F;
      } else if (Key == "extra") {
        const std::optional<rt::Nanos> N = parseTime(Value);
        Ok = N.has_value();
        if (Ok)
          E.ExtraNanos = *N;
      } else if (Key == "amp") {
        const std::optional<rt::Nanos> N = parseTime(Value);
        Ok = N.has_value();
        if (Ok)
          E.AmplitudeNanos = *N;
      } else if (Key == "proc") {
        const std::optional<double> P = parseNumber(Value);
        Ok = P && *P >= 0 && *P == static_cast<double>(static_cast<int>(*P));
        if (Ok)
          E.Proc = static_cast<int>(*P);
      } else if (Key == "obj") {
        std::optional<double> Lo, Hi;
        if (const auto Range = splitRange(Value)) {
          Lo = parseNumber(Range->first);
          Hi = parseNumber(Range->second);
        } else {
          Lo = Hi = parseNumber(Value);
        }
        Ok = Lo && Hi && *Lo >= 0 && *Hi >= *Lo;
        if (Ok) {
          E.ObjLo = static_cast<int64_t>(*Lo);
          E.ObjHi = static_cast<int64_t>(*Hi);
        }
      } else if (Key == "section") {
        E.Section = Value;
      } else if (Key == "seed") {
        const std::optional<double> S = parseNumber(Value);
        Ok = S && *S >= 0;
        if (Ok)
          Sched.Seed = static_cast<uint64_t>(*S);
      } else {
        Error = "event '" + Text + "': unknown option '" + Key + "'";
        return std::nullopt;
      }
      if (!Ok) {
        Error = "event '" + Text + "': bad value for '" + Key + "': '" +
                Value + "'";
        return std::nullopt;
      }
    }
    Sched.Events.push_back(std::move(E));
  }
  return Sched;
}

bool perturb::validateSchedule(const PerturbationSchedule &Sched,
                               unsigned NumProcs, std::string &Error) {
  const auto RenderEvent = [](const FaultEvent &E) {
    PerturbationSchedule One;
    One.Events.push_back(E);
    return renderSchedule(One);
  };
  rt::Nanos PrevStart = 0;
  for (size_t I = 0; I < Sched.Events.size(); ++I) {
    const FaultEvent &E = Sched.Events[I];
    if (E.Proc >= 0 && static_cast<unsigned>(E.Proc) >= NumProcs) {
      Error = format("event %zu (%s): proc=%d out of range for %u processors "
                     "(valid 0..%u)",
                     I + 1, RenderEvent(E).c_str(), E.Proc, NumProcs,
                     NumProcs - 1);
      return false;
    }
    if (I > 0 && E.StartNanos < PrevStart) {
      Error = format("event %zu (%s): activation time %gs precedes event "
                     "%zu's %gs; list events in non-decreasing start order",
                     I + 1, RenderEvent(E).c_str(),
                     rt::nanosToSeconds(E.StartNanos), I,
                     rt::nanosToSeconds(PrevStart));
      return false;
    }
    PrevStart = E.StartNanos;
  }
  return true;
}

std::string perturb::renderSchedule(const PerturbationSchedule &Sched) {
  std::string Out;
  for (const FaultEvent &E : Sched.Events) {
    if (!Out.empty())
      Out += ",";
    Out += faultKindName(E.Kind);
    Out += format("@%gs-", rt::nanosToSeconds(E.StartNanos));
    if (E.EndNanos >= std::numeric_limits<rt::Nanos>::max() / 2)
      Out += "inf";
    else
      Out += format("%gs", rt::nanosToSeconds(E.EndNanos));
    switch (E.Kind) {
    case FaultKind::ProcSlowdown:
    case FaultKind::PhaseShift:
      Out += format(":factor=%g", E.Factor);
      break;
    case FaultKind::LockHoldSpike:
    case FaultKind::ContentionBurst:
      Out += format(":extra=%gus", static_cast<double>(E.ExtraNanos) / 1e3);
      break;
    case FaultKind::TimerNoise:
      Out += format(":amp=%gus", static_cast<double>(E.AmplitudeNanos) / 1e3);
      break;
    }
    if (E.Proc >= 0)
      Out += format(":proc=%d", E.Proc);
    if (E.ObjLo >= 0)
      Out += format(":obj=%lld-%lld", static_cast<long long>(E.ObjLo),
                    static_cast<long long>(E.ObjHi));
    if (!E.Section.empty())
      Out += ":section=" + E.Section;
  }
  return Out;
}
