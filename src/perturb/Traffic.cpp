//===- perturb/Traffic.cpp ------------------------------------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "perturb/Traffic.h"

#include "support/Random.h"
#include "support/StringUtils.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>

using namespace dynfb;
using namespace dynfb::perturb;

const char *perturb::trafficMixName(TrafficMix M) {
  switch (M) {
  case TrafficMix::Steady:
    return "steady";
  case TrafficMix::Diurnal:
    return "diurnal";
  case TrafficMix::Storm:
    return "storm";
  }
  return "?";
}

namespace {

std::optional<TrafficMix> mixFromName(const std::string &Name) {
  for (TrafficMix M :
       {TrafficMix::Steady, TrafficMix::Diurnal, TrafficMix::Storm})
    if (Name == trafficMixName(M))
      return M;
  return std::nullopt;
}

std::optional<double> parseNumber(const std::string &Text) {
  const char *Begin = Text.c_str();
  char *End = nullptr;
  const double Value = std::strtod(Begin, &End);
  if (End == Begin || *End != '\0')
    return std::nullopt;
  return Value;
}

/// Parses "<number>[s|ms|us|ns]" into nanoseconds (default seconds).
std::optional<rt::Nanos> parseTime(const std::string &Text) {
  const char *Begin = Text.c_str();
  char *End = nullptr;
  const double Value = std::strtod(Begin, &End);
  if (End == Begin || Value < 0)
    return std::nullopt;
  const std::string Unit(End);
  double Scale = 1e9;
  if (Unit == "s" || Unit.empty())
    Scale = 1e9;
  else if (Unit == "ms")
    Scale = 1e6;
  else if (Unit == "us")
    Scale = 1e3;
  else if (Unit == "ns")
    Scale = 1;
  else
    return std::nullopt;
  return static_cast<rt::Nanos>(Value * Scale);
}

} // namespace

std::optional<TrafficSpec> perturb::parseTraffic(const std::string &Spec,
                                                 std::string &Error) {
  const std::string Text = trim(Spec);
  if (Text.empty()) {
    Error = "empty traffic spec";
    return std::nullopt;
  }
  const std::vector<std::string> Parts = splitString(Text, ':');
  TrafficSpec T;
  if (std::optional<TrafficMix> M = mixFromName(Parts[0]))
    T.Mix = *M;
  else {
    Error = "unknown traffic mix '" + Parts[0] +
            "' (want steady|diurnal|storm)";
    return std::nullopt;
  }
  for (size_t I = 1; I < Parts.size(); ++I) {
    const std::vector<std::string> KV = splitString(Parts[I], '=');
    if (KV.size() != 2 || KV[0].empty() || KV[1].empty()) {
      Error = "traffic spec: bad option '" + Parts[I] + "' (want key=value)";
      return std::nullopt;
    }
    const std::string &Key = KV[0], &Value = KV[1];
    bool Ok = true;
    if (Key == "window") {
      const std::optional<rt::Nanos> N = parseTime(Value);
      Ok = N && *N > 0;
      if (Ok)
        T.WindowNanos = *N;
    } else if (Key == "windows") {
      const std::optional<double> N = parseNumber(Value);
      Ok = N && *N >= 1 && *N <= 100000 &&
           *N == static_cast<double>(static_cast<unsigned>(*N));
      if (Ok)
        T.Windows = static_cast<unsigned>(*N);
    } else if (Key == "tenants") {
      const std::optional<double> N = parseNumber(Value);
      Ok = N && *N >= 1 && *N <= 4096 &&
           *N == static_cast<double>(static_cast<unsigned>(*N));
      if (Ok)
        T.Tenants = static_cast<unsigned>(*N);
    } else if (Key == "peak") {
      const std::optional<double> F = parseNumber(Value);
      Ok = F && *F >= 1.0 && *F <= 1e3;
      if (Ok)
        T.PeakFactor = *F;
    } else if (Key == "burst") {
      const std::optional<rt::Nanos> N = parseTime(Value);
      Ok = N.has_value();
      if (Ok)
        T.BurstExtraNanos = *N;
    } else if (Key == "storm") {
      const std::optional<double> P = parseNumber(Value);
      Ok = P && *P >= 0.0 && *P <= 1.0;
      if (Ok)
        T.StormProbability = *P;
    } else if (Key == "seed") {
      const std::optional<double> S = parseNumber(Value);
      Ok = S && *S >= 0;
      if (Ok)
        T.Seed = static_cast<uint64_t>(*S);
    } else if (Key == "loop") {
      if (Value == "open")
        T.ClosedLoop = false;
      else if (Value == "closed")
        T.ClosedLoop = true;
      else
        Ok = false;
    } else {
      Error = "traffic spec: unknown option '" + Key + "'";
      return std::nullopt;
    }
    if (!Ok) {
      Error = "traffic spec: bad value for '" + Key + "': '" + Value + "'";
      return std::nullopt;
    }
  }
  return T;
}

std::string perturb::renderTraffic(const TrafficSpec &Spec) {
  std::string Out = trafficMixName(Spec.Mix);
  Out += format(":window=%gs", rt::nanosToSeconds(Spec.WindowNanos));
  Out += format(":windows=%u", Spec.Windows);
  Out += format(":tenants=%u", Spec.Tenants);
  Out += format(":peak=%g", Spec.PeakFactor);
  Out += format(":burst=%gus", static_cast<double>(Spec.BurstExtraNanos) / 1e3);
  if (Spec.Mix == TrafficMix::Storm)
    Out += format(":storm=%g", Spec.StormProbability);
  Out += format(":seed=%llu", static_cast<unsigned long long>(Spec.Seed));
  Out += format(":loop=%s", Spec.ClosedLoop ? "closed" : "open");
  return Out;
}

PerturbationSchedule perturb::compileTraffic(const TrafficSpec &Spec,
                                             unsigned NumShards,
                                             unsigned NumProcs) {
  PerturbationSchedule Sched;
  Sched.Seed = Spec.Seed;
  Rng R(Spec.Seed);

  const unsigned Tenants = std::max(1u, std::min(Spec.Tenants, NumShards));
  const unsigned ShardsPerTenant = std::max(1u, NumShards / Tenants);
  const double Pi = 3.14159265358979323846;

  for (unsigned W = 0; W < Spec.Windows; ++W) {
    const rt::Nanos T0 = static_cast<rt::Nanos>(W) * Spec.WindowNanos;
    const rt::Nanos T1 = T0 + Spec.WindowNanos;

    // Diurnal intensity: a smooth single-peak curve over the horizon, 1.0
    // at the troughs and PeakFactor at the mid-horizon peak, with a little
    // seeded jitter so windows never repeat exactly.
    double Intensity = 1.0;
    if (Spec.Mix != TrafficMix::Steady && Spec.Windows > 1) {
      const double Phase =
          0.5 * (1.0 - std::cos(2.0 * Pi * W / Spec.Windows));
      Intensity = 1.0 + (Spec.PeakFactor - 1.0) * Phase;
      Intensity *= R.uniform(0.95, 1.05);
    }

    // Open-loop arrival pressure: per-request demand follows the curve.
    // Closed-loop clients hold concurrency fixed, so no intensity event.
    if (!Spec.ClosedLoop && std::abs(Intensity - 1.0) > 1e-9) {
      FaultEvent E;
      E.Kind = FaultKind::PhaseShift;
      E.StartNanos = T0;
      E.EndNanos = T1;
      E.Factor = Intensity;
      Sched.Events.push_back(E);
    }

    // Hot tenant of the window: its contiguous shard range sees extra
    // acquire latency, scaled by the window's intensity.
    const unsigned Tenant = W % Tenants;
    const int64_t Lo = static_cast<int64_t>(Tenant) * ShardsPerTenant;
    const int64_t Hi =
        Tenant + 1 == Tenants
            ? static_cast<int64_t>(NumShards) - 1
            : Lo + static_cast<int64_t>(ShardsPerTenant) - 1;
    if (Spec.BurstExtraNanos > 0 && NumShards > 0) {
      FaultEvent E;
      E.Kind = FaultKind::ContentionBurst;
      E.StartNanos = T0;
      E.EndNanos = T1;
      E.ExtraNanos = static_cast<rt::Nanos>(
          static_cast<double>(Spec.BurstExtraNanos) * Intensity);
      E.ObjLo = Lo;
      E.ObjHi = Hi;
      Sched.Events.push_back(E);
    }

    // Storm windows: a machine-wide contention spike plus one struck
    // processor, both drawn from the seed.
    if (Spec.Mix == TrafficMix::Storm) {
      const double Draw = R.nextDouble();
      if (Draw < Spec.StormProbability) {
        FaultEvent Spike;
        Spike.Kind = FaultKind::ContentionBurst;
        Spike.StartNanos = T0;
        Spike.EndNanos = T1;
        Spike.ExtraNanos = 4 * std::max<rt::Nanos>(Spec.BurstExtraNanos, 1);
        Sched.Events.push_back(Spike);

        FaultEvent Slow;
        Slow.Kind = FaultKind::ProcSlowdown;
        Slow.StartNanos = T0;
        Slow.EndNanos = T1;
        Slow.Factor = R.uniform(2.0, 5.0);
        Slow.Proc = NumProcs > 0
                        ? static_cast<int>(R.nextBelow(NumProcs))
                        : -1;
        Sched.Events.push_back(Slow);
      }
    }
  }

  // Storm mixes also carry a small machine-wide timer jitter for the whole
  // horizon: measurement noise is part of the weather.
  if (Spec.Mix == TrafficMix::Storm) {
    FaultEvent Noise;
    Noise.Kind = FaultKind::TimerNoise;
    Noise.StartNanos = 0;
    Noise.EndNanos = static_cast<rt::Nanos>(Spec.Windows) * Spec.WindowNanos;
    Noise.AmplitudeNanos = 2000; // +-2 us per timer read.
    Sched.Events.push_back(Noise);
  }

  // validateSchedule requires non-decreasing activation times.
  std::stable_sort(Sched.Events.begin(), Sched.Events.end(),
                   [](const FaultEvent &A, const FaultEvent &B) {
                     return A.StartNanos < B.StartNanos;
                   });
  return Sched;
}
