//===- perturb/Traffic.h - Serving traffic generator ------------*- C++ -*-===//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//
///
/// \file
/// Deterministic serving-traffic generator for the request-driven kvserve
/// workload. A TrafficSpec describes a stream of traffic windows -- diurnal
/// intensity phases, rotating hot tenants and seeded perturbation storms --
/// and compiles down to an ordinary PerturbationSchedule over virtual time.
/// The workload binding itself stays pure and identical per occurrence; all
/// time variation the serving experiment studies is expressed through the
/// compiled schedule, so every run is exactly reproducible from the spec.
///
/// Open-loop traffic emits intensity (PhaseShift) events: per-request demand
/// rises and falls with the arrival-rate curve regardless of how fast the
/// server drains. Closed-loop traffic suppresses them: a fixed concurrency
/// of clients keeps per-window demand flat and only the contention pattern
/// (hot tenants, storms) varies.
///
//===----------------------------------------------------------------------===//

#ifndef DYNFB_PERTURB_TRAFFIC_H
#define DYNFB_PERTURB_TRAFFIC_H

#include "perturb/Schedule.h"

#include <optional>
#include <string>

namespace dynfb::perturb {

/// The built-in traffic mixes.
enum class TrafficMix {
  Steady,  ///< Flat intensity; only the hot tenant rotates.
  Diurnal, ///< Smooth single-peak day curve over the horizon.
  Storm,   ///< Diurnal curve plus seeded per-window perturbation storms.
};

/// Display / spec name of a traffic mix ("steady", "diurnal", "storm").
const char *trafficMixName(TrafficMix M);

/// A serving traffic stream: a horizon of fixed-length windows, each with a
/// deterministic intensity, hot tenant, and (storm mix) storm draw.
struct TrafficSpec {
  TrafficMix Mix = TrafficMix::Diurnal;

  /// Closed-loop clients (fixed concurrency): no intensity events.
  bool ClosedLoop = false;

  /// One traffic window: the granularity of intensity / hot-tenant change.
  rt::Nanos WindowNanos = rt::secondsToNanos(2.0);

  /// Horizon length in windows.
  unsigned Windows = 8;

  /// Tenants rotating through the hot-shard slot (window w heats tenant
  /// w mod Tenants, i.e. that tenant's contiguous shard range).
  unsigned Tenants = 4;

  /// Peak-to-trough per-request demand ratio of the diurnal curve
  /// (open-loop only; 1.0 flattens it).
  double PeakFactor = 3.0;

  /// Extra acquire latency on the hot tenant's shard locks per window.
  rt::Nanos BurstExtraNanos = 200000; // 200 us.

  /// Per-window storm probability (Storm mix only). A storm window adds a
  /// machine-wide contention spike and a seeded single-processor slowdown.
  double StormProbability = 0.25;

  /// Seed driving every pseudo-random draw (storm placement, jitter, the
  /// struck processor) and the compiled schedule's timer-noise stream.
  uint64_t Seed = 42;
};

/// Parses a traffic spec of the form
///
///   <mix>[:key=value]...
///
/// where <mix> is steady | diurnal | storm and the keys are
/// window=<time>, windows=<N>, tenants=<N>, peak=<F>, burst=<time>,
/// storm=<P in [0,1]>, seed=<N>, loop=open|closed. Examples:
///
///   diurnal:windows=12:window=2s:peak=3
///   storm:storm=0.4:seed=7:loop=closed
///
/// Returns std::nullopt and fills \p Error with a one-line diagnostic on
/// malformed input.
std::optional<TrafficSpec> parseTraffic(const std::string &Spec,
                                        std::string &Error);

/// Renders a spec back to the grammar (round-trips through parseTraffic).
std::string renderTraffic(const TrafficSpec &Spec);

/// Compiles the traffic stream into a perturbation schedule for a server of
/// \p NumShards shard locks (lock-object ids 0..NumShards-1) on \p NumProcs
/// processors. The result is sorted by activation time and deterministic in
/// (Spec, NumShards, NumProcs).
PerturbationSchedule compileTraffic(const TrafficSpec &Spec,
                                    unsigned NumShards, unsigned NumProcs);

} // namespace dynfb::perturb

#endif // DYNFB_PERTURB_TRAFFIC_H
