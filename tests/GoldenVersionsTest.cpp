//===- tests/GoldenVersionsTest.cpp - Generated-version structure goldens --==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Locks down the exact structure of the code the synchronization optimizer
// generates for the three applications, via the textual printer. Any
// change to placement, coalescing or lifting behaviour shows up here.
//
//===----------------------------------------------------------------------===//

#include "apps/barnes_hut/BarnesHutApp.h"
#include "apps/string_tomo/StringApp.h"
#include "apps/water/WaterApp.h"
#include "ir/Printer.h"

#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::ir;
using namespace dynfb::xform;

namespace {

/// Counts occurrences of \p Needle in \p Text.
size_t countOccurrences(const std::string &Text, const std::string &Needle) {
  size_t Count = 0;
  for (size_t Pos = Text.find(Needle); Pos != std::string::npos;
       Pos = Text.find(Needle, Pos + 1))
    ++Count;
  return Count;
}

std::string printedVersion(const App &App, const char *Section,
                           PolicyKind P) {
  const VersionedSection *VS = App.program().find(Section);
  std::string Out = printMethod(*VS->versionFor(P).Entry);
  // Include single direct callee bodies for interprocedural structure.
  for (const Stmt *S : VS->versionFor(P).Entry->body()) {
    const CallStmt *C = stmtDynCast<CallStmt>(S);
    if (const auto *L = stmtDynCast<LoopStmt>(S))
      for (const Stmt *Inner : L->Body)
        if (const auto *IC = stmtDynCast<CallStmt>(Inner))
          C = IC;
    if (C)
      Out += printMethod(*C->callee());
  }
  return Out;
}

TEST(GoldenVersionsTest, BarnesHutAggressiveIsFigure2) {
  bh::BarnesHutConfig Config;
  Config.NumBodies = 64;
  bh::BarnesHutApp App(Config);
  const std::string Text =
      printedVersion(App, "FORCES", PolicyKind::Aggressive);
  // The paper's Figure 2: acquire before the loop, release after it, and a
  // lock-free interaction body.
  const size_t AcqPos = Text.find("this->mutex.acquire();");
  const size_t LoopPos = Text.find("for i");
  const size_t RelPos = Text.find("this->mutex.release();");
  ASSERT_NE(AcqPos, std::string::npos);
  ASSERT_NE(LoopPos, std::string::npos);
  ASSERT_NE(RelPos, std::string::npos);
  EXPECT_LT(AcqPos, LoopPos);
  EXPECT_LT(LoopPos, RelPos);
  EXPECT_EQ(countOccurrences(Text, "acquire"), 1u);
  EXPECT_EQ(countOccurrences(Text, "release"), 1u);
  EXPECT_NE(Text.find("_nolock"), std::string::npos);
}

TEST(GoldenVersionsTest, BarnesHutOriginalHasPerUpdateRegions) {
  bh::BarnesHutConfig Config;
  Config.NumBodies = 64;
  bh::BarnesHutApp App(Config);
  const std::string Text =
      printedVersion(App, "FORCES", PolicyKind::Original);
  // Two updates, each in its own region, inside the callee.
  EXPECT_EQ(countOccurrences(Text, "acquire"), 2u);
  EXPECT_EQ(countOccurrences(Text, "release"), 2u);
}

TEST(GoldenVersionsTest, BarnesHutBoundedCoalescesWithinOperation) {
  bh::BarnesHutConfig Config;
  Config.NumBodies = 64;
  bh::BarnesHutApp App(Config);
  const std::string Text =
      printedVersion(App, "FORCES", PolicyKind::Bounded);
  EXPECT_EQ(countOccurrences(Text, "acquire"), 1u);
  EXPECT_EQ(countOccurrences(Text, "release"), 1u);
  // The single region still sits inside the per-interaction callee (not
  // lifted out of the loop).
  const size_t LoopPos = Text.find("for i");
  const size_t AcqPos = Text.find("acquire");
  EXPECT_LT(LoopPos, AcqPos);
}

TEST(GoldenVersionsTest, WaterInterfBoundedHasTwoRegionsPerPartner) {
  water::WaterConfig Config;
  Config.NumMolecules = 16;
  water::WaterApp App(Config);
  const std::string Text =
      printedVersion(App, "INTERF", PolicyKind::Bounded);
  // One region on `this`, one on the partner, per partner-loop body.
  EXPECT_EQ(countOccurrences(Text, "this->mutex.acquire()"), 1u);
  EXPECT_EQ(countOccurrences(Text, "]->mutex.acquire()"), 1u);
  EXPECT_EQ(countOccurrences(Text, "acquire"), 2u);
}

TEST(GoldenVersionsTest, WaterPotengAggressiveWrapsWholeIteration) {
  water::WaterConfig Config;
  Config.NumMolecules = 16;
  water::WaterApp App(Config);
  const std::string Text =
      printedVersion(App, "POTENG", PolicyKind::Aggressive);
  const size_t AcqPos = Text.find("global->mutex.acquire();");
  const size_t LoopPos = Text.find("for i");
  const size_t RelPos = Text.find("global->mutex.release();");
  ASSERT_NE(AcqPos, std::string::npos);
  EXPECT_LT(AcqPos, LoopPos);
  EXPECT_LT(LoopPos, RelPos);
  EXPECT_EQ(countOccurrences(Text, "acquire"), 1u);
}

TEST(GoldenVersionsTest, StringAggressiveLiftsOutOfSegmentLoopOnly) {
  string_tomo::StringConfig Config;
  Config.NumRays = 16;
  string_tomo::StringApp App(Config);
  const std::string Text =
      printedVersion(App, "TRACE", PolicyKind::Aggressive);
  // The trace compute stays outside the region; the segment loop sits
  // inside it.
  const size_t ComputePos = Text.find("compute");
  const size_t AcqPos = Text.find("mdl->mutex.acquire();");
  const size_t LoopPos = Text.find("for i");
  ASSERT_NE(AcqPos, std::string::npos);
  EXPECT_LT(ComputePos, AcqPos);
  EXPECT_LT(AcqPos, LoopPos);
  EXPECT_EQ(countOccurrences(Text, "acquire"), 1u);
}

TEST(GoldenVersionsTest, StringOriginalTwoRegionsPerSegment) {
  string_tomo::StringConfig Config;
  Config.NumRays = 16;
  string_tomo::StringApp App(Config);
  const std::string Text =
      printedVersion(App, "TRACE", PolicyKind::Original);
  EXPECT_EQ(countOccurrences(Text, "acquire"), 2u);
  EXPECT_EQ(countOccurrences(Text, "release"), 2u);
}

} // namespace
