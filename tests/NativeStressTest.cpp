//===- tests/NativeStressTest.cpp - Switch-point stress on real threads ---==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Stress tests for the native runtime's switch points: short intervals
// force many version switches at ThreadTeam barrier boundaries across 2-8
// workers, and the assertions pin the invariants the dynamic feedback
// machinery relies on -- a claimed iteration executes exactly once (no
// lost or duplicated work across switches), cumulative interval traces
// grow monotonically, and per-lock contention accounting survives worker
// merges. Run these under ThreadSanitizer (the CI tsan job does) to catch
// data races at the switch barrier.
//
//===----------------------------------------------------------------------===//

#include "rt/RealRunner.h"

#include <gtest/gtest.h>

#include <atomic>
#include <memory>
#include <vector>

using namespace dynfb;
using namespace dynfb::rt;

namespace {

/// Builds a two-version runner whose bodies mark per-iteration execution
/// counts in \p Hits (one atomic per iteration). The versions differ in
/// scheduling so the switch barrier exercises both the per-iteration and
/// the chunked dispatch paths.
std::unique_ptr<RealSectionRunner>
makeCountingRunner(ThreadTeam &Team, std::vector<std::atomic<uint32_t>> &Hits,
                   uint64_t Iterations) {
  std::vector<NativeVersion> Versions;
  Versions.push_back(NativeVersion{
      "count$dyn",
      [&Hits](uint64_t Iter, WorkerCtx &) {
        Hits[Iter].fetch_add(1, std::memory_order_relaxed);
      },
      SchedSpec::dynamic()});
  Versions.push_back(NativeVersion{
      "count$c8",
      [&Hits](uint64_t Iter, WorkerCtx &) {
        Hits[Iter].fetch_add(1, std::memory_order_relaxed);
      },
      SchedSpec::chunked(8)});
  return std::make_unique<RealSectionRunner>(Team, std::move(Versions),
                                             Iterations);
}

TEST(NativeStressTest, SwitchPointsLoseNoIterations) {
  constexpr uint64_t Iterations = 20000;
  for (const unsigned Workers : {2u, 3u, 4u, 8u}) {
    std::vector<std::atomic<uint32_t>> Hits(Iterations);
    ThreadTeam Team(Workers);
    const std::unique_ptr<RealSectionRunner> Runner =
        makeCountingRunner(Team, Hits, Iterations);

    // Alternate versions with a tiny interval budget: every runInterval
    // return is a switch point, so the run crosses many barriers before
    // the iteration space is exhausted.
    unsigned Intervals = 0;
    bool Finished = false;
    while (!Runner->done()) {
      Finished = Runner->runInterval(Intervals % 2, millisToNanos(0.2))
                     .Finished;
      ++Intervals;
      ASSERT_LT(Intervals, 100000u) << "runner failed to make progress";
    }
    EXPECT_TRUE(Finished);
    EXPECT_TRUE(Runner->done());

    // The heart of the synchronous-switch guarantee: every claimed
    // iteration executed exactly once, regardless of where the switch
    // points fell.
    uint64_t Executed = 0;
    for (uint64_t I = 0; I < Iterations; ++I) {
      ASSERT_EQ(Hits[I].load(), 1u)
          << "iteration " << I << " executed " << Hits[I].load()
          << " times across " << Workers << " workers";
      ++Executed;
    }
    EXPECT_EQ(Executed, Iterations);
    EXPECT_GE(Intervals, 2u) << "budget too generous to exercise switches";
  }
}

TEST(NativeStressTest, CumulativeTraceGrowsMonotonically) {
  constexpr uint64_t Iterations = 8000;
  for (const unsigned Workers : {2u, 4u}) {
    std::vector<std::atomic<uint32_t>> Hits(Iterations);
    ThreadTeam Team(Workers);
    const std::unique_ptr<RealSectionRunner> Runner =
        makeCountingRunner(Team, Hits, Iterations);

    IntervalTrace Trace;
    Trace.Cumulative = true;
    Runner->attachTrace(&Trace);

    uint64_t PrevIters = 0;
    Nanos PrevCompute = 0;
    Nanos PrevNow = Runner->now();
    unsigned Intervals = 0;
    while (!Runner->done()) {
      Runner->runInterval(Intervals % 2, millisToNanos(0.2));
      ++Intervals;
      ASSERT_LT(Intervals, 100000u);

      uint64_t Iters = 0;
      Nanos Compute = 0;
      for (const IntervalTrace::ProcSummary &P : Trace.Procs) {
        Iters += P.Iterations;
        Compute += P.ComputeNanos;
      }
      EXPECT_GE(Iters, PrevIters) << "cumulative iteration count shrank";
      EXPECT_GE(Compute, PrevCompute) << "cumulative compute time shrank";
      PrevIters = Iters;
      PrevCompute = Compute;

      const Nanos Now = Runner->now();
      EXPECT_GE(Now, PrevNow) << "runner clock went backwards";
      PrevNow = Now;
    }
    EXPECT_EQ(Trace.Procs.size(), Workers);
    EXPECT_EQ(PrevIters, Iterations)
        << "cumulative trace lost iterations across switches";
  }
}

TEST(NativeStressTest, ContendedLockAccountingSurvivesSwitches) {
  constexpr uint64_t Iterations = 4000;
  for (const unsigned Workers : {2u, 4u, 8u}) {
    SpinLock Lock;
    uint64_t Shared = 0; // Protected by Lock; TSan checks the exclusion.
    std::vector<NativeVersion> Versions;
    for (const char *Label : {"lock$a", "lock$b"})
      Versions.push_back(NativeVersion{
          Label,
          [&](uint64_t, WorkerCtx &Ctx) {
            Ctx.acquire(Lock, /*Obj=*/0);
            ++Shared;
            Ctx.release(Lock);
          },
          SchedSpec::dynamic()});
    ThreadTeam Team(Workers);
    RealSectionRunner Runner(Team, std::move(Versions), Iterations);

    IntervalTrace Trace;
    Trace.Cumulative = true;
    Runner.attachTrace(&Trace);

    unsigned Intervals = 0;
    uint64_t Pairs = 0;
    while (!Runner.done()) {
      Pairs += Runner.runInterval(Intervals % 2, millisToNanos(0.5))
                   .Stats.AcquireReleasePairs;
      ++Intervals;
      ASSERT_LT(Intervals, 100000u);
    }

    EXPECT_EQ(Shared, Iterations) << "critical region lost updates";
    EXPECT_EQ(Pairs, Iterations);
    ASSERT_EQ(Trace.Locks.count(0), 1u);
    EXPECT_EQ(Trace.Locks.at(0).Acquires, Iterations);
    EXPECT_LE(Trace.Locks.at(0).Contended, Iterations);
  }
}

} // namespace
