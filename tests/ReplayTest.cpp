//===- tests/ReplayTest.cpp - Record/replay and what-if explorer tests ----==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Covers the src/replay subsystem (docs/REPLAY.md): trace materialization
// and replay divergence detection, the run_spec meta round-trip, the
// truncated-trace diagnostic, SimMachine checkpoint/restore identity and
// the Explorer's checkpointed counterfactuals against fresh pinned runs.
//
//===----------------------------------------------------------------------===//

#include "apps/Factory.h"
#include "apps/Harness.h"
#include "fb/Sampling.h"
#include "obs/Export.h"
#include "replay/Explorer.h"
#include "replay/Replay.h"
#include "rt/MachineModel.h"
#include "sim/Backend.h"

#include <gtest/gtest.h>
#include <limits>

using namespace dynfb;
using namespace dynfb::rt;

namespace {

constexpr Nanos Unbounded = std::numeric_limits<Nanos>::max() / 4;

/// First parallel section of \p App's schedule.
std::string firstParallelSection(const apps::App &App) {
  for (const Phase &P : App.schedule())
    if (P.K == Phase::Kind::Parallel)
      return P.SectionName;
  return "";
}

/// Runs \p Section to completion with version \p V pinned and returns the
/// accumulated stats.
OverheadStats runSectionPinned(sim::SimBackend &Backend,
                               const std::string &Section, unsigned V) {
  const std::unique_ptr<sim::SimSectionRunner> Runner =
      Backend.beginSectionSim(Section);
  OverheadStats S;
  while (!Runner->done()) {
    const IntervalReport Report = Runner->runInterval(V, Unbounded);
    S.merge(Report.Stats);
    if (Report.Finished)
      break;
  }
  return S;
}

void expectStatsEqual(const OverheadStats &A, const OverheadStats &B) {
  EXPECT_EQ(A.AcquireReleasePairs, B.AcquireReleasePairs);
  EXPECT_EQ(A.FailedAcquires, B.FailedAcquires);
  EXPECT_EQ(A.LockOpNanos, B.LockOpNanos);
  EXPECT_EQ(A.WaitNanos, B.WaitNanos);
  EXPECT_EQ(A.SchedNanos, B.SchedNanos);
  EXPECT_EQ(A.ExecNanos, B.ExecNanos);
}

// --------------------- Checkpoint / restore --------------------------------

// A section re-run after restore() must be bit-identical to the first run
// from that state, and to an uninterrupted run on a fresh machine that
// reached the same state -- on the topology-aware model, whose pricing
// depends on the lock-home state a restore must rewind.
TEST(ReplayCheckpointTest, RestoreRerunsBitIdentical) {
  const std::unique_ptr<apps::App> App = apps::createApp("water", 0.125);
  ASSERT_NE(App, nullptr);
  const std::unique_ptr<MachineModel> Model =
      createMachineModel("dash-numa");
  ASSERT_NE(Model, nullptr);
  const std::string Section = firstParallelSection(*App);
  ASSERT_FALSE(Section.empty());

  const std::unique_ptr<sim::SimBackend> Backend = App->makeSimBackend(
      4, *Model, apps::VersionSpec::dynamicFeedback());
  Backend->runSerial(5000000);
  const sim::SimMachine::Checkpoint CP = Backend->machine().checkpoint();
  const Nanos Before = Backend->now();

  const OverheadStats First = runSectionPinned(*Backend, Section, 0);
  const Nanos After = Backend->now();
  // Disturb the clock and lock homes past the checkpoint...
  runSectionPinned(*Backend, Section, 1);
  EXPECT_GT(Backend->now(), After);
  // ...then rewind and re-run: same end state, same measurements.
  Backend->machine().restore(CP);
  EXPECT_EQ(Backend->now(), Before);
  const OverheadStats Second = runSectionPinned(*Backend, Section, 0);
  EXPECT_EQ(Backend->now(), After);
  expectStatsEqual(First, Second);

  // An uninterrupted run that never checkpointed agrees too.
  const std::unique_ptr<sim::SimBackend> Fresh = App->makeSimBackend(
      4, *Model, apps::VersionSpec::dynamicFeedback());
  Fresh->runSerial(5000000);
  const OverheadStats Uninterrupted = runSectionPinned(*Fresh, Section, 0);
  EXPECT_EQ(Fresh->now(), After);
  expectStatsEqual(First, Uninterrupted);
}

// ------------------------- Explorer ----------------------------------------

// The mainline the Explorer records while forking counterfactuals must be
// the run the dynamic policy would have executed with no exploration at
// all (restore() leaves no residue).
TEST(ExplorerTest, MainlineMatchesUninterruptedRun) {
  const std::unique_ptr<apps::App> App = apps::createApp("string", 0.125);
  ASSERT_NE(App, nullptr);
  const std::unique_ptr<MachineModel> Model =
      createMachineModel("dash-flat");
  ASSERT_NE(Model, nullptr);

  const replay::Exploration E = replay::explore(*App, 8, *Model);
  const fb::RunResult R = apps::runApp(
      *App, 8, apps::VersionSpec::dynamicFeedback(), *Model);

  EXPECT_EQ(E.Mainline.TotalNanos, R.TotalNanos);
  EXPECT_EQ(E.Mainline.Occurrences.size(), R.Occurrences.size());
  expectStatsEqual(E.Mainline.ParallelStats, R.ParallelStats);
}

// Every checkpointed what-if must agree exactly with a fresh uninterrupted
// run pinning the same version: on the default (non-topology) machine an
// occurrence's cost is independent of its start state, so forking at the
// phase boundary is indistinguishable from never having run anything else.
TEST(ExplorerTest, CounterfactualsMatchFreshPinnedRuns) {
  const std::unique_ptr<apps::App> App = apps::createApp("water", 0.125);
  ASSERT_NE(App, nullptr);
  const std::unique_ptr<MachineModel> Model =
      createMachineModel("dash-flat");
  ASSERT_NE(Model, nullptr);

  const replay::Exploration E = replay::explore(*App, 4, *Model);
  ASSERT_FALSE(E.WhatIfs.empty());
  unsigned MaxVersions = 0;
  for (const replay::WhatIf &W : E.WhatIfs)
    MaxVersions = std::max(MaxVersions, W.Version + 1);

  size_t Checks = 0;
  for (unsigned V = 0; V < MaxVersions; ++V)
    for (const replay::WhatIf &G : replay::runPinned(*App, 4, *Model, V))
      for (const replay::WhatIf *W : E.occurrence(G.Occurrence)) {
        if (W->Version != G.Version)
          continue;
        ++Checks;
        EXPECT_EQ(W->DurationNanos, G.DurationNanos)
            << "occurrence " << G.Occurrence << " version " << G.Version;
        expectStatsEqual(W->Stats, G.Stats);
      }
  EXPECT_GT(Checks, 0u);

  const replay::RegretSummary S = replay::summarizeRegret(E);
  EXPECT_GT(S.DynamicParallelNanos, 0);
  EXPECT_GT(S.ClairvoyantParallelNanos, 0);
  const std::string Report = replay::renderWhatIfReport(E);
  EXPECT_NE(Report.find("What-if exploration"), std::string::npos);
  EXPECT_NE(Report.find("Clairvoyant"), std::string::npos);
}

// ------------------------- Record / replay ---------------------------------

/// Records a water run the way dynfb-run --trace-out does: run, build the
/// trace, stamp machine identity and the run_spec (mirroring the CLI's
/// stamping of its own configuration).
obs::RunTrace recordWaterRun(
    const MachineModel &Model,
    fb::SamplerKind Sampler = fb::SamplerKind::Exhaustive) {
  const std::unique_ptr<apps::App> App = apps::createApp("water", 0.25);
  EXPECT_NE(App, nullptr);
  fb::FeedbackConfig Config;
  Config.SpanSectionExecutions = true;
  Config.TargetSamplingNanos = millisToNanos(2);
  Config.TargetProductionNanos = secondsToNanos(2);
  Config.Sampler = Sampler;

  apps::RunObservation Obs;
  Obs.CollectSectionTraces = true;
  const fb::RunResult R =
      apps::runApp(*App, 4, apps::VersionSpec::dynamicFeedback(), Model,
                   Config, nullptr, nullptr, &Obs);

  obs::RunTrace Trace = apps::buildRunTrace("water", 4, "dynamic", R, &Obs);
  Trace.Meta.Machine = Model.name();
  Trace.Meta.MachineParams = Model.paramsString();
  obs::RunSpec &Spec = Trace.Meta.Spec;
  Spec.Present = true;
  Spec.Scale = 0.25;
  Spec.SamplingNanos = Config.TargetSamplingNanos;
  Spec.ProductionNanos = Config.TargetProductionNanos;
  Spec.Spanning = Config.SpanSectionExecutions;
  Spec.Sampler = fb::samplerName(Config.Sampler);
  Spec.SearchBudget = Config.SearchBudgetFraction;
  Spec.UcbExplore = Config.UcbExplore;
  return Trace;
}

// record -> replay -> record: zero divergence and a byte-identical
// serialization, through the JSONL round-trip as well.
TEST(ReplayTest, RecordReplayRecordByteIdentical) {
  const std::unique_ptr<MachineModel> Model =
      createMachineModel("dash-flat");
  ASSERT_NE(Model, nullptr);
  const obs::RunTrace Recorded = recordWaterRun(*Model);

  std::string Error;
  const std::optional<replay::ReplayResult> Result =
      replay::replayTrace(Recorded, Error);
  ASSERT_TRUE(Result.has_value()) << Error;
  EXPECT_FALSE(Result->diverged()) << Result->Divergence;
  EXPECT_EQ(obs::toJsonl(Recorded), obs::toJsonl(Result->Replayed));

  // The file-format round-trip preserves replayability byte for byte.
  const std::string Jsonl = obs::toJsonl(Recorded);
  const std::optional<obs::RunTrace> Parsed = obs::parseJsonl(Jsonl, Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  EXPECT_TRUE(Parsed->Meta.Spec.Present);
  EXPECT_EQ(obs::toJsonl(*Parsed), Jsonl);
  const std::optional<replay::ReplayResult> Again =
      replay::replayTrace(*Parsed, Error);
  ASSERT_TRUE(Again.has_value()) << Error;
  EXPECT_FALSE(Again->diverged()) << Again->Divergence;
}

// The partial-sampling strategies are replayable too: a ucb recording
// replays with zero divergence and re-serializes byte for byte, its
// prune/promote search decisions included, and a halving recording
// survives the JSONL round-trip the same way.
TEST(ReplayTest, PartialSamplingRecordingReplaysByteIdentical) {
  const std::unique_ptr<MachineModel> Model =
      createMachineModel("dash-flat");
  ASSERT_NE(Model, nullptr);
  const obs::RunTrace Recorded =
      recordWaterRun(*Model, fb::SamplerKind::Ucb);
  EXPECT_EQ(Recorded.Meta.Spec.Sampler, "ucb");
  bool SawSearchDecision = false;
  for (const obs::DecisionEvent &E : Recorded.Decisions)
    if (E.Kind == obs::DecisionKind::Prune ||
        E.Kind == obs::DecisionKind::Promote)
      SawSearchDecision = true;
  EXPECT_TRUE(SawSearchDecision);

  std::string Error;
  const std::optional<replay::ReplayResult> Result =
      replay::replayTrace(Recorded, Error);
  ASSERT_TRUE(Result.has_value()) << Error;
  EXPECT_FALSE(Result->diverged()) << Result->Divergence;
  EXPECT_EQ(obs::toJsonl(Recorded), obs::toJsonl(Result->Replayed));

  const obs::RunTrace Halving =
      recordWaterRun(*Model, fb::SamplerKind::Halving);
  const std::optional<obs::RunTrace> Parsed =
      obs::parseJsonl(obs::toJsonl(Halving), Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  const std::optional<replay::ReplayResult> Again =
      replay::replayTrace(*Parsed, Error);
  ASSERT_TRUE(Again.has_value()) << Error;
  EXPECT_FALSE(Again->diverged()) << Again->Divergence;
  EXPECT_EQ(obs::toJsonl(*Parsed), obs::toJsonl(Again->Replayed));
}

// A tampered recording diverges, and the report names the first
// mismatching line (the first diverging interval's decision record).
TEST(ReplayTest, DivergenceNamesFirstMismatchingLine) {
  const std::unique_ptr<MachineModel> Model =
      createMachineModel("dash-flat");
  ASSERT_NE(Model, nullptr);
  const obs::RunTrace Recorded = recordWaterRun(*Model);
  ASSERT_GE(Recorded.Decisions.size(), 2u);

  obs::RunTrace Tampered = Recorded;
  Tampered.Decisions[1].TimeNanos += 1;
  const std::string Divergence = replay::compareTraces(Recorded, Tampered);
  // Meta is line 1, decisions follow in order: decision [1] is line 3.
  EXPECT_NE(Divergence.find("line 3 (decision)"), std::string::npos)
      << Divergence;

  obs::RunTrace Longer = Recorded;
  Longer.Decisions.push_back(Recorded.Decisions.back());
  // An appended decision shifts every later line; the first mismatch is
  // where the section records used to start.
  EXPECT_NE(replay::compareTraces(Recorded, Longer).find("line"),
            std::string::npos);
  EXPECT_EQ(replay::compareTraces(Recorded, Recorded), "");
}

// Traces recorded before replay support (no run_spec) still parse -- the
// schema is additive -- but refuse to materialize with a clear message.
TEST(ReplayTest, PreReplayTraceParsesButIsNotReplayable) {
  const std::string Old =
      "{\"type\":\"meta\",\"schema\":1,\"app\":\"water\","
      "\"policy\":\"dynamic\",\"procs\":4,\"total_ns\":5}\n";
  std::string Error;
  const std::optional<obs::RunTrace> Trace = obs::parseJsonl(Old, Error);
  ASSERT_TRUE(Trace.has_value()) << Error;
  EXPECT_FALSE(Trace->Meta.Spec.Present);
  EXPECT_FALSE(replay::materialize(*Trace, Error).has_value());
  EXPECT_NE(Error.find("no run_spec"), std::string::npos) << Error;
}

// Native-backend traces are not replayable (real time is not
// deterministic); the refusal says so.
TEST(ReplayTest, NativeTraceIsNotReplayable) {
  const std::unique_ptr<MachineModel> Model =
      createMachineModel("dash-flat");
  ASSERT_NE(Model, nullptr);
  obs::RunTrace Trace = recordWaterRun(*Model);
  Trace.Meta.Backend = "native";
  std::string Error;
  EXPECT_FALSE(replay::materialize(Trace, Error).has_value());
  EXPECT_NE(Error.find("only simulator traces"), std::string::npos) << Error;
}

// ------------------------- run_spec round-trip ------------------------------

TEST(ReplayTest, RunSpecRoundTripsThroughJsonl) {
  obs::RunTrace Trace;
  Trace.Meta.App = "string";
  Trace.Meta.Policy = "dynamic";
  Trace.Meta.Procs = 8;
  Trace.Meta.TotalNanos = 123456789;
  obs::RunSpec &S = Trace.Meta.Spec;
  S.Present = true;
  S.Scale = 0.1; // Not exactly representable: exercises %.17g round-trip.
  S.Dimensions = "sync,sched";
  S.Chunks = "8,32";
  S.SamplingNanos = 2000000;
  S.ProductionNanos = 2000000000;
  S.Cutoff = true;
  S.Ordering = true;
  S.Spanning = true;
  S.Repeats = 5;
  S.Aggregate = "trimmed";
  S.Hysteresis = 0.3;
  S.Drift = 0.25;
  S.SliceNanos = 50000000;
  S.QuarantineStrikes = 3;
  S.QuarantineWindow = 12;
  S.QuarantineLimit = 1.5;
  S.QuarantineBackoff = 6;
  S.Watchdog = 2;
  S.WatchdogLimit = 0.7;
  S.Sampler = "halving";
  S.SearchBudget = 0.35;
  S.UcbExplore = 1.25;
  S.PerturbSpec = "contend@0.5s-1.5s:extra=300us:obj=1-64";
  S.CostOverrides = "AcquireNanos=400";

  const std::string Jsonl = obs::toJsonl(Trace);
  std::string Error;
  const std::optional<obs::RunTrace> Parsed = obs::parseJsonl(Jsonl, Error);
  ASSERT_TRUE(Parsed.has_value()) << Error;
  const obs::RunSpec &P = Parsed->Meta.Spec;
  EXPECT_TRUE(P.Present);
  EXPECT_EQ(P.Scale, S.Scale);
  EXPECT_EQ(P.Dimensions, S.Dimensions);
  EXPECT_EQ(P.Chunks, S.Chunks);
  EXPECT_EQ(P.SamplingNanos, S.SamplingNanos);
  EXPECT_EQ(P.ProductionNanos, S.ProductionNanos);
  EXPECT_EQ(P.Cutoff, S.Cutoff);
  EXPECT_EQ(P.Ordering, S.Ordering);
  EXPECT_EQ(P.Spanning, S.Spanning);
  EXPECT_EQ(P.Repeats, S.Repeats);
  EXPECT_EQ(P.Aggregate, S.Aggregate);
  EXPECT_EQ(P.Hysteresis, S.Hysteresis);
  EXPECT_EQ(P.Drift, S.Drift);
  EXPECT_EQ(P.SliceNanos, S.SliceNanos);
  EXPECT_EQ(P.QuarantineStrikes, S.QuarantineStrikes);
  EXPECT_EQ(P.QuarantineWindow, S.QuarantineWindow);
  EXPECT_EQ(P.QuarantineLimit, S.QuarantineLimit);
  EXPECT_EQ(P.QuarantineBackoff, S.QuarantineBackoff);
  EXPECT_EQ(P.Watchdog, S.Watchdog);
  EXPECT_EQ(P.WatchdogLimit, S.WatchdogLimit);
  EXPECT_EQ(P.Sampler, S.Sampler);
  EXPECT_EQ(P.SearchBudget, S.SearchBudget);
  EXPECT_EQ(P.UcbExplore, S.UcbExplore);
  EXPECT_EQ(P.PerturbSpec, S.PerturbSpec);
  EXPECT_EQ(P.TrafficSpec, S.TrafficSpec);
  EXPECT_EQ(P.CostOverrides, S.CostOverrides);
  // Byte-identical re-serialization: the record->replay->record identity
  // rests on this.
  EXPECT_EQ(obs::toJsonl(*Parsed), Jsonl);
}

// ------------------------- Truncation rejection -----------------------------

TEST(ReplayTest, TruncatedTraceRejectedWithLineNumber) {
  std::string Error;
  // File cut mid-record on line 2.
  EXPECT_FALSE(obs::parseJsonl("{\"type\":\"meta\",\"schema\":1,"
                               "\"app\":\"w\",\"policy\":\"dynamic\","
                               "\"procs\":4,\"total_ns\":1}\n"
                               "{\"type\":\"decisio",
                               Error)
                   .has_value());
  EXPECT_NE(Error.find("line 2"), std::string::npos) << Error;
  EXPECT_NE(Error.find("truncated"), std::string::npos) << Error;

  // Even a syntactically complete final object without its newline is a
  // mid-write cut (toJsonl terminates every record).
  EXPECT_FALSE(obs::parseJsonl("{\"type\":\"meta\",\"schema\":1,"
                               "\"app\":\"w\",\"policy\":\"dynamic\","
                               "\"procs\":4,\"total_ns\":1}",
                               Error)
                   .has_value());
  EXPECT_NE(Error.find("line 1"), std::string::npos) << Error;
}

} // namespace
