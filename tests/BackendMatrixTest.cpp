//===- tests/BackendMatrixTest.cpp - Backend-agnostic layer tests ---------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Tests for the backend-agnostic execution seam: the shared SectionRegistry
// both backends consume, the native backend as a drop-in ExecutionBackend,
// and the instrumentation layer (interval traces, run traces, the exported
// backend field) behaving identically above either substrate.
//
//===----------------------------------------------------------------------===//

#include "apps/Harness.h"
#include "apps/water/WaterApp.h"
#include "obs/Export.h"
#include "rt/NativeBackend.h"
#include "rt/SectionRegistry.h"
#include "sim/Backend.h"

#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::apps;

namespace {

water::WaterApp smallWater() {
  water::WaterConfig Config;
  Config.NumMolecules = 8;
  Config.Timesteps = 2;
  return water::WaterApp(Config);
}

TEST(BackendMatrixTest, BackendKindNames) {
  EXPECT_STREQ(rt::backendKindName(rt::BackendKind::Sim), "sim");
  EXPECT_STREQ(rt::backendKindName(rt::BackendKind::Native), "native");
}

TEST(BackendMatrixTest, SectionRegistryFindsRegisteredSections) {
  const water::WaterApp App = smallWater();
  const rt::SectionRegistry Registry =
      App.makeSectionRegistry(VersionSpec::dynamicFeedback());
  ASSERT_FALSE(Registry.empty());
  const rt::SectionDesc *Interf = Registry.find("INTERF");
  ASSERT_NE(Interf, nullptr);
  EXPECT_EQ(Interf->Name, "INTERF");
  EXPECT_NE(Interf->Binding, nullptr);
  EXPECT_GT(Interf->Versions.size(), 1u); // Dynamic: the whole space.
  EXPECT_EQ(Registry.find("NOSUCH"), nullptr);
}

TEST(BackendMatrixTest, SerialSpecRegistersSingleVersion) {
  const water::WaterApp App = smallWater();
  const rt::SectionRegistry Registry =
      App.makeSectionRegistry(VersionSpec::serial());
  for (const rt::SectionDesc &Desc : Registry.sections()) {
    ASSERT_EQ(Desc.Versions.size(), 1u);
    EXPECT_EQ(Desc.Versions[0].Label, "Serial");
  }
}

TEST(BackendMatrixTest, BothBackendsBuildFromOneRegistry) {
  const water::WaterApp App = smallWater();
  const std::unique_ptr<rt::ExecutionBackend> Sim = App.makeSimBackend(
      2, rt::CostModel::dashLike(),
      VersionSpec::fixed(xform::PolicyKind::Original));
  const std::unique_ptr<rt::ExecutionBackend> Native = App.makeNativeBackend(
      2, VersionSpec::fixed(xform::PolicyKind::Original));
  EXPECT_EQ(Sim->kind(), rt::BackendKind::Sim);
  EXPECT_EQ(Native->kind(), rt::BackendKind::Native);
  EXPECT_NE(Sim->beginSection("INTERF"), nullptr);
  EXPECT_NE(Native->beginSection("INTERF"), nullptr);
}

// The backend-blindness property the tentpole is about: a fixed-policy run
// executes the identical workload on either backend, so the structural
// counters (acquire/release pairs) must agree exactly even though the
// measured times cannot.
TEST(BackendMatrixTest, FixedPolicyPairsAgreeAcrossBackends) {
  const water::WaterApp App = smallWater();
  const VersionSpec Spec = VersionSpec::fixed(xform::PolicyKind::Original);
  const fb::RunResult Sim = runApp(App, 2, Spec);
  const fb::RunResult Native =
      runApp(App, 2, Spec, *rt::createMachineModel("dash-flat"), {}, nullptr,
             nullptr, nullptr, BackendOptions::native(0.001));
  EXPECT_EQ(Native.ParallelStats.AcquireReleasePairs,
            Sim.ParallelStats.AcquireReleasePairs);
  EXPECT_GT(Native.TotalNanos, 0);
  EXPECT_EQ(Native.Occurrences.size(), Sim.Occurrences.size());
}

TEST(BackendMatrixTest, NativeBackendCollectsSectionTraces) {
  const water::WaterApp App = smallWater();
  RunObservation Obs;
  Obs.CollectSectionTraces = true;
  const fb::RunResult R =
      runApp(App, 2, VersionSpec::fixed(xform::PolicyKind::Original),
             *rt::createMachineModel("dash-flat"), {}, nullptr, nullptr, &Obs,
             BackendOptions::native(0.001));
  ASSERT_EQ(Obs.SectionTraces.count("INTERF"), 1u);
  const rt::IntervalTrace &Trace = Obs.SectionTraces.at("INTERF");
  EXPECT_EQ(Trace.Procs.size(), 2u);
  uint64_t Iters = 0;
  for (const rt::IntervalTrace::ProcSummary &P : Trace.Procs)
    Iters += P.Iterations;
  EXPECT_GT(Iters, 0u);
  EXPECT_FALSE(Trace.Locks.empty());
  EXPECT_GT(R.TotalNanos, 0);
}

TEST(BackendMatrixTest, RunTraceStampsBackendAndRoundTrips) {
  const water::WaterApp App = smallWater();
  RunObservation Obs;
  const fb::RunResult R =
      runApp(App, 2, VersionSpec::fixed(xform::PolicyKind::Original),
             *rt::createMachineModel("dash-flat"), {}, nullptr, nullptr, &Obs,
             BackendOptions::native(0.001));
  const obs::RunTrace Trace = buildRunTrace(
      "water", 2, "original", R, &Obs, rt::BackendKind::Native);
  EXPECT_EQ(Trace.Meta.Backend, "native");

  std::string Error;
  const std::optional<obs::RunTrace> Back =
      obs::parseJsonl(obs::toJsonl(Trace), Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->Meta.Backend, "native");
}

// Traces without a backend field (written before the native backend
// existed) parse as sim: the field is additive within trace schema 1.
TEST(BackendMatrixTest, TraceBackendDefaultsToSim) {
  const water::WaterApp App = smallWater();
  const fb::RunResult R =
      runApp(App, 2, VersionSpec::fixed(xform::PolicyKind::Original));
  const obs::RunTrace Trace = buildRunTrace("water", 2, "original", R);
  EXPECT_EQ(Trace.Meta.Backend, "sim");

  std::string Jsonl = obs::toJsonl(Trace);
  const size_t Pos = Jsonl.find(",\"backend\":\"sim\"");
  ASSERT_NE(Pos, std::string::npos);
  Jsonl.erase(Pos, std::string(",\"backend\":\"sim\"").size());
  std::string Error;
  const std::optional<obs::RunTrace> Back = obs::parseJsonl(Jsonl, Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->Meta.Backend, "sim");
}

} // namespace
