//===- tests/MachineModelTest.cpp - Unit tests for machine models ----------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "rt/MachineModel.h"
#include "sim/Machine.h"
#include "sim/SectionSim.h"

#include <gtest/gtest.h>
#include <limits>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::rt;
using namespace dynfb::sim;

namespace {

constexpr Nanos Unbounded = std::numeric_limits<Nanos>::max() / 4;

//===----------------------------------------------------------------------===//
// Registry and parameter plumbing
//===----------------------------------------------------------------------===//

TEST(MachineModelTest, RegistryCreatesEveryListedModel) {
  const std::vector<std::string> Names = machineModelNames();
  ASSERT_EQ(Names.size(), 3u);
  EXPECT_EQ(Names[0], "dash-flat");
  for (const std::string &Name : Names) {
    const std::unique_ptr<MachineModel> M = createMachineModel(Name);
    ASSERT_NE(M, nullptr) << Name;
    EXPECT_EQ(M->name(), Name);
    // The clone carries the same identity and parameters.
    const std::unique_ptr<MachineModel> C = M->clone();
    EXPECT_EQ(C->name(), Name);
    EXPECT_EQ(C->paramsString(), M->paramsString());
  }
  EXPECT_EQ(createMachineModel("dash-flart"), nullptr);
}

TEST(MachineModelTest, FlatModelPricesAreTheCostConstants) {
  CostModel CM;
  CM.AcquireNanos = 777;
  CM.TimerReadNanos = 12345;
  const FlatMachineModel M(CM);
  EXPECT_FALSE(M.topologyAware());
  EXPECT_EQ(M.nodeOf(15), 0u);
  // Pricing ignores the event state on a flat machine.
  const LockEvent Remote{7, 3, /*Home=*/2, /*ContentionDepth=*/5};
  EXPECT_EQ(M.acquireNanos(Remote), 777);
  EXPECT_EQ(M.releaseNanos(Remote), CM.ReleaseNanos);
  EXPECT_EQ(M.timerReadNanos(9), 12345);
  EXPECT_EQ(M.schedFetchNanos(9), CM.SchedFetchNanos);
}

TEST(MachineModelTest, ParamsRoundTripThroughSetParam) {
  const std::unique_ptr<MachineModel> M = createMachineModel("dash-numa");
  ASSERT_NE(M, nullptr);
  EXPECT_TRUE(M->setParam("LocalAcquireNanos", 42));
  EXPECT_TRUE(M->setParam("AcquireNanos", 4000));
  bool SawLocal = false, SawAcquire = false;
  for (const auto &[Name, Value] : M->params()) {
    if (Name == "LocalAcquireNanos") {
      SawLocal = true;
      EXPECT_EQ(Value, 42);
    }
    if (Name == "AcquireNanos") {
      SawAcquire = true;
      EXPECT_EQ(Value, 4000);
    }
  }
  EXPECT_TRUE(SawLocal);
  EXPECT_TRUE(SawAcquire);
  // Unknown names are rejected; so are values below an extra's minimum
  // (a 0-processor cluster would divide by zero in nodeOf).
  EXPECT_FALSE(M->setParam("NoSuchField", 1));
  EXPECT_FALSE(M->setParam("ClusterProcs", 0));
  EXPECT_TRUE(M->setParam("ClusterProcs", 2));
}

TEST(MachineModelTest, ApplyCostOverridesParsesAndDiagnoses) {
  const std::unique_ptr<MachineModel> M = createMachineModel("uma-cheaplock");
  ASSERT_NE(M, nullptr);
  std::string Error;
  EXPECT_TRUE(applyCostOverrides(*M, "AcquireNanos=5,ReleaseNanos=6", Error));
  EXPECT_EQ(M->costs().AcquireNanos, 5);
  EXPECT_EQ(M->costs().ReleaseNanos, 6);

  // Near-miss field names get a did-you-mean hint.
  EXPECT_FALSE(applyCostOverrides(*M, "AcquireNano=5", Error));
  EXPECT_NE(Error.find("did you mean"), std::string::npos) << Error;
  EXPECT_NE(Error.find("AcquireNanos"), std::string::npos) << Error;

  EXPECT_FALSE(applyCostOverrides(*M, "AcquireNanos", Error));
  EXPECT_FALSE(applyCostOverrides(*M, "AcquireNanos=-3", Error));
  EXPECT_FALSE(applyCostOverrides(*M, "AcquireNanos=fast", Error));

  // Regression: values past the int64 range used to saturate silently
  // through strtoll (LLONG_MAX passed the >= 0 check); they must be
  // diagnosed like any other malformed value.
  EXPECT_FALSE(
      applyCostOverrides(*M, "AcquireNanos=99999999999999999999", Error));
  EXPECT_NE(Error.find("non-negative integer"), std::string::npos) << Error;

  // Zero stays legal -- FailedAcquireNanos=0 is a meaningful "free retry"
  // configuration (the simulator clamps its waiting-time divisor instead
  // of rejecting the cost).
  EXPECT_TRUE(applyCostOverrides(*M, "FailedAcquireNanos=0", Error)) << Error;
  EXPECT_EQ(M->costs().FailedAcquireNanos, 0);

  // The paramsString rendering parses back verbatim (the exp-layer round
  // trip that makes machine parameters part of the cache key).
  const std::unique_ptr<MachineModel> N = createMachineModel("dash-numa");
  std::unique_ptr<MachineModel> N2 = createMachineModel("dash-numa");
  ASSERT_TRUE(N && N2);
  ASSERT_TRUE(N->setParam("MigrateHopNanos", 99));
  EXPECT_TRUE(applyCostOverrides(*N2, N->paramsString(), Error)) << Error;
  EXPECT_EQ(N2->paramsString(), N->paramsString());
}

//===----------------------------------------------------------------------===//
// dash-numa pricing
//===----------------------------------------------------------------------===//

TEST(MachineModelTest, DashNumaPricesColdLocalRemoteAndMigratory) {
  DashNumaModel M;
  ASSERT_TRUE(M.topologyAware());
  // Four processors per cluster: procs 0-3 on node 0, 4-7 on node 1.
  EXPECT_EQ(M.nodeOf(3), 0u);
  EXPECT_EQ(M.nodeOf(4), 1u);

  // Cold line: directory allocation at the flat acquire cost.
  EXPECT_EQ(M.acquireNanos({0, 0, /*Home=*/-1, 0}), M.costs().AcquireNanos);
  // Line already in the acquirer's cluster.
  EXPECT_EQ(M.acquireNanos({1, 0, /*Home=*/0, 0}), M.LocalAcquireNanos);
  // Cross-cluster migration, plus one hop per queued waiter.
  EXPECT_EQ(M.acquireNanos({4, 0, /*Home=*/0, 0}), M.RemoteAcquireNanos);
  EXPECT_EQ(M.acquireNanos({4, 0, /*Home=*/0, 3}),
            M.RemoteAcquireNanos + 3 * M.MigrateHopNanos);
  // Releases stay local: the releaser owns the line.
  EXPECT_EQ(M.releaseNanos({4, 0, /*Home=*/0, 0}), M.costs().ReleaseNanos);
}

//===----------------------------------------------------------------------===//
// Simulator integration: the toy section from SimTest
//===----------------------------------------------------------------------===//

/// One iteration: compute; acquire(this); update; release(this).
struct ToyWorkload {
  Module M{"toy"};
  Method *Entry = nullptr;

  ToyWorkload() {
    ClassDecl *C = M.createClass("c");
    const unsigned F = C->addField("f");
    Entry = M.createMethod("work", C);
    MethodBuilder B(M, Entry);
    B.compute();
    B.acquire(Receiver::thisObj());
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
    B.release(Receiver::thisObj());
  }
};

class ToyBinding final : public DataBinding {
public:
  uint64_t Iterations = 4;
  uint32_t Objects = 4;
  bool SharedLock = true; ///< All iterations lock object 0.
  rt::Nanos ComputeCost = 100000;

  uint64_t iterationCount() const override { return Iterations; }
  uint32_t objectCount() const override { return Objects; }
  ObjectId thisObject(uint64_t Iter) const override {
    return SharedLock ? 0 : static_cast<ObjectId>(Iter % Objects);
  }
  std::vector<ObjRef> sectionArgs(uint64_t) const override { return {}; }
  ObjectId elementOf(ArrayId, uint64_t, const LoopCtx &) const override {
    return 0;
  }
  uint64_t tripCount(unsigned, const LoopCtx &) const override { return 1; }
  rt::Nanos computeNanos(unsigned, const LoopCtx &) const override {
    return ComputeCost;
  }
};

Nanos runToyInterval(SimMachine &Machine, const ToyWorkload &W,
                     const ToyBinding &B) {
  SimSectionRunner Runner(Machine, B, {SimVersion{"only", W.Entry}}, false);
  const IntervalReport R = Runner.runInterval(0, Unbounded);
  EXPECT_TRUE(R.Finished);
  return R.EffectiveNanos;
}

TEST(MachineModelTest, FlatModelPathMatchesCostModelPath) {
  // The MachineModel-owning constructor with a flat model must reproduce
  // the CostModel compatibility path bit for bit (the seed behaviour).
  ToyWorkload W;
  ToyBinding B;
  CostModel CM;
  SimMachine Compat(2, CM);
  SimMachine Modeled(2, std::make_unique<FlatMachineModel>(CM));
  EXPECT_EQ(runToyInterval(Compat, W, B), runToyInterval(Modeled, W, B));
}

TEST(MachineModelTest, CostLinearityOnZeroComputeSection) {
  // Property: with no compute, the interval duration on a flat machine is
  // linear in the cost block -- doubling every cost field exactly doubles
  // the effective time. Guards against stray constants in the event loop.
  ToyWorkload W;
  ToyBinding B;
  B.ComputeCost = 0;
  B.SharedLock = false;
  CostModel CM;
  CostModel Doubled = CM;
  Doubled.AcquireNanos *= 2;
  Doubled.ReleaseNanos *= 2;
  Doubled.FailedAcquireNanos *= 2;
  Doubled.TimerReadNanos *= 2;
  Doubled.BarrierNanos *= 2;
  Doubled.SchedFetchNanos *= 2;
  Doubled.UpdateNanos *= 2;
  Doubled.InstrumentNanos *= 2;
  SimMachine M1(1, std::make_unique<FlatMachineModel>(CM));
  SimMachine M2(1, std::make_unique<FlatMachineModel>(Doubled));
  EXPECT_EQ(2 * runToyInterval(M1, W, B), runToyInterval(M2, W, B));
}

TEST(MachineModelTest, NumaHomeTrackingPersistsAcrossOccurrences) {
  // Single processor, one shared lock, dash-numa: the first acquire of the
  // run is cold (flat price), every later one is cluster-local. A second
  // section occurrence on the same machine starts with the line still home,
  // so even its first acquire is local -- lockHomes persists per run.
  ToyWorkload W;
  ToyBinding B;
  const DashNumaModel Numa;
  const Nanos ColdVsLocal =
      Numa.costs().AcquireNanos - Numa.LocalAcquireNanos;

  SimMachine Flat(1, std::make_unique<FlatMachineModel>(Numa.costs()));
  const Nanos FlatNanos = runToyInterval(Flat, W, B);

  SimMachine Machine(1, std::make_unique<DashNumaModel>());
  // First occurrence: 1 cold + 3 local acquires.
  EXPECT_EQ(runToyInterval(Machine, W, B),
            FlatNanos - 3 * ColdVsLocal);
  // Second occurrence: 4 local acquires.
  EXPECT_EQ(runToyInterval(Machine, W, B),
            FlatNanos - 4 * ColdVsLocal);
}

TEST(MachineModelTest, LockHomesGrowsAndPreservesEntries) {
  CostModel CM;
  SimMachine Machine(4, CM);
  std::vector<int> &Homes = Machine.lockHomes("s", 4);
  ASSERT_EQ(Homes.size(), 4u);
  EXPECT_EQ(Homes[0], -1);
  Homes[0] = 1;
  std::vector<int> &Grown = Machine.lockHomes("s", 8);
  ASSERT_EQ(Grown.size(), 8u);
  EXPECT_EQ(Grown[0], 1);  // Prior state survives growth...
  EXPECT_EQ(Grown[7], -1); // ...and new lines start cold.
  // Sections track their homes independently.
  EXPECT_EQ(Machine.lockHomes("other", 1)[0], -1);
}

} // namespace
