//===- tests/NativeSectionTest.cpp - IR sections on real threads ----------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/water/WaterApp.h"
#include "fb/Controller.h"
#include "rt/NativeSection.h"

#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::rt;
using namespace dynfb::xform;

namespace {

TEST(NativeSectionTest, BusyWaitWaitsApproximately) {
  const Nanos T0 = steadyNow();
  busyWait(millisToNanos(2));
  const Nanos Elapsed = steadyNow() - T0;
  EXPECT_GE(Elapsed, millisToNanos(2));
  EXPECT_LT(Elapsed, millisToNanos(50));
}

TEST(NativeSectionTest, RunsGeneratedWaterPotengNatively) {
  water::WaterConfig Config;
  Config.NumMolecules = 8;
  water::WaterApp App(Config);
  const VersionedSection *VS = App.program().find("POTENG");

  std::vector<NativeIrVersion> Versions;
  for (const SectionVersion &V : VS->Versions)
    Versions.push_back(NativeIrVersion{V.label(), V.Entry});

  ThreadTeam Team(2);
  // Scale virtual microseconds down 1000x so the test runs in millis.
  auto Runner = makeNativeIrRunner(Team, App.binding("POTENG"),
                                   std::move(Versions),
                                   CostModel::dashLike(), 0.001);
  ASSERT_EQ(Runner->numVersions(), 2u);

  const IntervalReport R =
      Runner->runInterval(0, secondsToNanos(60));
  EXPECT_TRUE(R.Finished);
  // Original/Bounded POTENG: one pair per neighbor-list entry.
  EXPECT_EQ(R.Stats.AcquireReleasePairs, App.system().totalPairs());
}

TEST(NativeSectionTest, FeedbackControllerDrivesNativeIrSection) {
  water::WaterConfig Config;
  Config.NumMolecules = 8;
  water::WaterApp App(Config);
  const VersionedSection *VS = App.program().find("POTENG");

  std::vector<NativeIrVersion> Versions;
  for (const SectionVersion &V : VS->Versions)
    Versions.push_back(NativeIrVersion{V.label(), V.Entry});

  ThreadTeam Team(2);
  auto Runner = makeNativeIrRunner(Team, App.binding("POTENG"),
                                   std::move(Versions),
                                   CostModel::dashLike(), 0.001);

  fb::FeedbackConfig FC;
  FC.TargetSamplingNanos = millisToNanos(2);
  FC.TargetProductionNanos = millisToNanos(50);
  fb::FeedbackController Controller(FC);
  const fb::SectionExecutionTrace Trace =
      Controller.executeSection(*Runner, "POTENG");
  EXPECT_TRUE(Runner->done());
  EXPECT_GT(Trace.SampledIntervals, 0u);
}

} // namespace
