//===- tests/FbTest.cpp - Unit tests for the dynamic feedback core --------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "fb/Controller.h"
#include "fb/Driver.h"
#include "fb/Sampling.h"
#include "obs/Metrics.h"

#include <functional>
#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::fb;
using namespace dynfb::rt;

namespace {

/// Synthetic runner: version V has overhead OverheadFn(V, now). Work is a
/// fixed amount of virtual time; each interval consumes min(target,
/// remaining) and reports stats with exactly the requested overhead.
class MockRunner : public IntervalRunner {
public:
  MockRunner(unsigned NumVersions, Nanos TotalWork,
             std::function<double(unsigned, Nanos)> OverheadFn)
      : NumVersionsV(NumVersions), TotalWork(TotalWork),
        OverheadFn(std::move(OverheadFn)) {}
  ~MockRunner() override {
    if (OnDestroy)
      OnDestroy(*this);
  }

  unsigned numVersions() const override { return NumVersionsV; }
  std::string versionLabel(unsigned V) const override {
    return "v" + std::to_string(V);
  }
  IntervalReport runInterval(unsigned V, Nanos Target) override {
    const double Overhead = OverheadFn(V, Clock);
    // Overhead inflates the time needed per unit of useful work.
    const Nanos Dur = std::min(Target, Nanos(static_cast<double>(Remaining) /
                                             (1.0 - Overhead)));
    Clock += Dur;
    Remaining -= static_cast<Nanos>(static_cast<double>(Dur) *
                                    (1.0 - Overhead));
    if (Remaining < 1000) // Round-off guard.
      Remaining = 0;
    IntervalReport R;
    R.EffectiveNanos = Dur;
    R.Stats.ExecNanos = Dur;
    R.Stats.LockOpNanos = static_cast<Nanos>(Overhead * Dur);
    R.Stats.AcquireReleasePairs = static_cast<uint64_t>(V) + 1;
    R.Finished = Remaining == 0;
    ++IntervalsRun[V];
    return R;
  }
  bool done() const override { return Remaining == 0; }
  void reset() override { Remaining = TotalWork; }
  Nanos now() const override { return Clock; }

  const unsigned NumVersionsV;
  const Nanos TotalWork;
  Nanos Remaining = TotalWork;
  Nanos Clock = 0;
  std::function<double(unsigned, Nanos)> OverheadFn;
  std::map<unsigned, unsigned> IntervalsRun;
  /// The driver owns and destroys runners; a backend that needs a runner's
  /// final state can collect it here instead of keeping a dangling pointer.
  std::function<void(const MockRunner &)> OnDestroy;
};

FeedbackConfig smallConfig() {
  FeedbackConfig C;
  C.TargetSamplingNanos = millisToNanos(10);
  C.TargetProductionNanos = secondsToNanos(1);
  return C;
}

TEST(ControllerTest, PicksLowestOverheadVersion) {
  MockRunner R(3, secondsToNanos(3), [](unsigned V, Nanos) {
    return V == 1 ? 0.05 : 0.5; // Version 1 is clearly best.
  });
  FeedbackController C(smallConfig());
  const SectionExecutionTrace T = C.executeSection(R, "S");
  ASSERT_FALSE(T.ChosenVersions.empty());
  for (unsigned V : T.ChosenVersions)
    EXPECT_EQ(V, 1u);
  EXPECT_EQ(T.dominantVersion(), 1u);
}

TEST(ControllerTest, SamplesEveryVersionEachSamplingPhase) {
  MockRunner R(3, secondsToNanos(2),
               [](unsigned, Nanos) { return 0.1; });
  FeedbackController C(smallConfig());
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_EQ(T.SampledIntervals, T.SamplingPhases * 3);
  EXPECT_EQ(T.SampledOverheads.all().size(), 3u);
}

TEST(ControllerTest, AdaptsWhenEnvironmentChanges) {
  // Version 0 starts best; after 2 virtual seconds version 1 becomes best.
  MockRunner R(2, secondsToNanos(6), [](unsigned V, Nanos Now) {
    const bool Early = Now < secondsToNanos(2);
    if (V == 0)
      return Early ? 0.05 : 0.6;
    return Early ? 0.4 : 0.05;
  });
  FeedbackConfig Config = smallConfig();
  Config.TargetProductionNanos = secondsToNanos(1);
  FeedbackController C(Config);
  const SectionExecutionTrace T = C.executeSection(R, "S");
  ASSERT_GE(T.ChosenVersions.size(), 3u);
  EXPECT_EQ(T.ChosenVersions.front(), 0u);
  EXPECT_EQ(T.ChosenVersions.back(), 1u);
}

TEST(ControllerTest, TiesResolveToEarliestPolicy) {
  MockRunner R(3, secondsToNanos(1),
               [](unsigned, Nanos) { return 0.2; });
  FeedbackController C(smallConfig());
  const SectionExecutionTrace T = C.executeSection(R, "S");
  ASSERT_FALSE(T.ChosenVersions.empty());
  EXPECT_EQ(T.ChosenVersions.front(), 0u);
}

TEST(ControllerTest, EarlyCutoffSkipsRemainingVersions) {
  // Extreme-first order puts the last version first; give it negligible
  // overhead so sampling cuts off after one interval.
  MockRunner R(3, secondsToNanos(2), [](unsigned V, Nanos) {
    return V == 2 ? 0.01 : 0.5;
  });
  FeedbackConfig Config = smallConfig();
  Config.EarlyCutoff = true;
  FeedbackController C(Config);
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_GT(T.SkippedByCutoff, 0u);
  EXPECT_EQ(T.ChosenVersions.front(), 2u);
  // Versions 0 and 1 were never run at all in the first phase.
  EXPECT_EQ(R.IntervalsRun.count(1), 0u);
}

std::vector<std::string> mockLabels(unsigned N) {
  std::vector<std::string> Labels;
  for (unsigned V = 0; V < N; ++V)
    Labels.push_back("v" + std::to_string(V));
  return Labels;
}

TEST(ControllerTest, SamplingOrderDefaultIsSpaceOrder) {
  FeedbackController C(smallConfig());
  const auto Order = C.samplingOrder(mockLabels(3), "S");
  EXPECT_EQ(Order, (std::vector<unsigned>{0, 1, 2}));
}

TEST(ControllerTest, SamplingOrderExtremesFirstUnderCutoff) {
  FeedbackConfig Config = smallConfig();
  Config.EarlyCutoff = true;
  FeedbackController C(Config);
  const auto Order = C.samplingOrder(mockLabels(3), "S");
  EXPECT_EQ(Order, (std::vector<unsigned>{2, 0, 1}));
}

TEST(ControllerTest, PolicyOrderingUsesHistory) {
  PolicyHistory History;
  History.recordBest("S", "v1");
  FeedbackConfig Config = smallConfig();
  Config.UsePolicyOrdering = true;
  FeedbackController C(Config, &History);
  const auto Order = C.samplingOrder(mockLabels(3), "S");
  EXPECT_EQ(Order.front(), 1u);
  // Unknown sections fall back to space order.
  EXPECT_EQ(C.samplingOrder(mockLabels(3), "T").front(), 0u);
}

TEST(ControllerTest, HistoryIsRecorded) {
  PolicyHistory History;
  MockRunner R(2, secondsToNanos(1), [](unsigned V, Nanos) {
    return V == 1 ? 0.1 : 0.5;
  });
  FeedbackController C(smallConfig(), &History);
  C.executeSection(R, "S");
  EXPECT_EQ(History.lastBest("S"), "v1");
}

TEST(ControllerTest, SamplesWholeSpaceAtEverySize) {
  // The sampling phase visits every point of the version space regardless
  // of its size: |space| = 1 (degenerate), 4, 9 (the 3x3 product).
  for (const unsigned N : {1u, 4u, 9u}) {
    const unsigned BestV = N - 1;
    MockRunner R(N, secondsToNanos(4), [BestV](unsigned V, Nanos) {
      return V == BestV ? 0.05 : 0.4;
    });
    FeedbackController C(smallConfig());
    const SectionExecutionTrace T = C.executeSection(R, "S");
    EXPECT_EQ(T.SampledIntervals, T.SamplingPhases * N) << "N=" << N;
    EXPECT_EQ(T.SampledOverheads.all().size(), N);
    ASSERT_FALSE(T.ChosenVersions.empty());
    EXPECT_EQ(T.dominantVersion(), BestV);
  }
}

TEST(ControllerTest, EarlyCutoffScalesWithSpaceSize) {
  // Early cut-off matters more the larger the space: with the extreme
  // (last) version acceptable, the middle of the space is never sampled.
  for (const unsigned N : {4u, 9u}) {
    MockRunner R(N, secondsToNanos(2), [N](unsigned V, Nanos) {
      return V == N - 1 ? 0.01 : 0.5;
    });
    FeedbackConfig Config = smallConfig();
    Config.EarlyCutoff = true;
    FeedbackController C(Config);
    const SectionExecutionTrace T = C.executeSection(R, "S");
    EXPECT_GT(T.SkippedByCutoff, 0u) << "N=" << N;
    EXPECT_EQ(T.ChosenVersions.front(), N - 1);
    EXPECT_EQ(R.IntervalsRun.count(1), 0u);
  }
}

TEST(ControllerTest, SamplingOrderAcrossSpaceSizes) {
  FeedbackController Plain(smallConfig());
  EXPECT_EQ(Plain.samplingOrder(mockLabels(1), "S"),
            (std::vector<unsigned>{0}));
  EXPECT_EQ(Plain.samplingOrder(mockLabels(4), "S"),
            (std::vector<unsigned>{0, 1, 2, 3}));

  FeedbackConfig Cut = smallConfig();
  Cut.EarlyCutoff = true;
  FeedbackController C(Cut);
  // Extremes first; a one-version space has a single extreme.
  EXPECT_EQ(C.samplingOrder(mockLabels(1), "S"),
            (std::vector<unsigned>{0}));
  EXPECT_EQ(C.samplingOrder(mockLabels(4), "S"),
            (std::vector<unsigned>{3, 0, 1, 2}));
  EXPECT_EQ(C.samplingOrder(mockLabels(9), "S"),
            (std::vector<unsigned>{8, 0, 1, 2, 3, 4, 5, 6, 7}));
}

TEST(ControllerTest, HistorySurvivesReorderedAndExtendedSpace) {
  // History records descriptor names, not indices, so recorded knowledge
  // stays valid when the space is reordered or extended between runs.
  PolicyHistory History;
  History.recordBest("S", "Bounded");
  FeedbackConfig Config = smallConfig();
  Config.UsePolicyOrdering = true;
  FeedbackController C(Config, &History);

  const std::vector<std::string> Space3{"Original", "Bounded", "Aggressive"};
  EXPECT_EQ(C.samplingOrder(Space3, "S").front(), 1u);
  const std::vector<std::string> Reordered{"Aggressive", "Original",
                                           "Bounded"};
  EXPECT_EQ(C.samplingOrder(Reordered, "S").front(), 2u);
  const std::vector<std::string> Product{
      "Original",   "Original+chunk8",   "Original+chunk32",
      "Bounded",    "Bounded+chunk8",    "Bounded+chunk32",
      "Aggressive", "Aggressive+chunk8", "Aggressive+chunk32"};
  EXPECT_EQ(C.samplingOrder(Product, "S").front(), 3u);
}

TEST(ControllerTest, HistoryResolvesMergedVersionLabels) {
  // Water INTERF merges Bounded and Aggressive into one version labelled
  // "Bounded/Aggressive": a best recorded under a component name resolves
  // to the merged version, and a merged name resolves in a split space.
  PolicyHistory History;
  History.recordBest("S", "Aggressive");
  FeedbackConfig Config = smallConfig();
  Config.UsePolicyOrdering = true;
  FeedbackController C(Config, &History);
  const std::vector<std::string> Merged{"Original", "Bounded/Aggressive"};
  EXPECT_EQ(C.samplingOrder(Merged, "S").front(), 1u);

  History.recordBest("S", "Bounded/Aggressive");
  const std::vector<std::string> Split{"Original", "Bounded", "Aggressive"};
  EXPECT_EQ(C.samplingOrder(Split, "S").front(), 1u);
}

TEST(ControllerTest, RecordsEffectiveSamplingIntervals) {
  MockRunner R(2, secondsToNanos(1),
               [](unsigned, Nanos) { return 0.1; });
  FeedbackController C(smallConfig());
  const SectionExecutionTrace T = C.executeSection(R, "S");
  ASSERT_EQ(T.EffectiveSamplingByVersion.size(), 2u);
  for (const auto &[Label, Stat] : T.EffectiveSamplingByVersion) {
    (void)Label;
    EXPECT_GT(Stat.count(), 0u);
    EXPECT_GT(Stat.mean(), 0.0);
  }
}

TEST(ControllerTest, SectionShorterThanSamplingStillCompletes) {
  MockRunner R(3, millisToNanos(5), [](unsigned, Nanos) { return 0.1; });
  FeedbackController C(smallConfig());
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_TRUE(R.done());
  EXPECT_LE(T.SampledIntervals, 3u);
}

TEST(ControllerTest, OverheadAlwaysInUnitInterval) {
  OverheadStats S;
  S.ExecNanos = 1000;
  S.LockOpNanos = 600;
  S.WaitNanos = 600;
  EXPECT_DOUBLE_EQ(S.totalOverhead(), 1.0); // Clamped.
  S.LockOpNanos = 0;
  S.WaitNanos = 0;
  EXPECT_DOUBLE_EQ(S.totalOverhead(), 0.0);
  OverheadStats Empty;
  EXPECT_DOUBLE_EQ(Empty.totalOverhead(), 0.0);
}

// ----------------------------- Edge cases ---------------------------------

TEST(ControllerEdgeTest, SingleVersionSectionRunsToCompletion) {
  MockRunner R(1, secondsToNanos(1), [](unsigned, Nanos) { return 0.2; });
  FeedbackController C(smallConfig());
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_TRUE(R.done());
  ASSERT_FALSE(T.ChosenVersions.empty());
  for (unsigned V : T.ChosenVersions)
    EXPECT_EQ(V, 0u);
  EXPECT_EQ(T.dominantVersion(), 0u);
  EXPECT_EQ(T.SampledOverheads.all().size(), 1u);
}

TEST(ControllerEdgeTest, ZeroWorkSectionProducesEmptyTrace) {
  MockRunner R(3, 0, [](unsigned, Nanos) { return 0.2; });
  FeedbackController C(smallConfig());
  ASSERT_TRUE(R.done());
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_EQ(T.SampledIntervals, 0u);
  EXPECT_TRUE(T.ChosenVersions.empty());
  EXPECT_EQ(T.dominantVersion(), std::nullopt);
  EXPECT_EQ(T.durationNanos(), 0);
}

TEST(ControllerEdgeTest, SamplingIntervalLongerThanSection) {
  // The whole section fits inside the first sampling interval: the run
  // completes during sampling, never reaches production, and the trace
  // stays consistent.
  FeedbackConfig Config;
  Config.TargetSamplingNanos = secondsToNanos(10);
  Config.TargetProductionNanos = secondsToNanos(100);
  MockRunner R(3, millisToNanos(50), [](unsigned, Nanos) { return 0.1; });
  FeedbackController C(Config);
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_TRUE(R.done());
  EXPECT_EQ(T.SampledIntervals, 1u);
  EXPECT_TRUE(T.ChosenVersions.empty());
  EXPECT_EQ(T.dominantVersion(), std::nullopt);
}

TEST(ControllerEdgeTest, DegenerateZeroDurationIntervalsAreCounted) {
  // A runner that reports zero-duration intervals for version 1: before the
  // robustness fix a 0/0 measurement entered selection as a perfect zero
  // overhead and version 1 always "won".
  class ZeroForOne : public MockRunner {
  public:
    using MockRunner::MockRunner;
    IntervalReport runInterval(unsigned V, Nanos Target) override {
      if (V == 1)
        return IntervalReport{}; // Zero duration, nothing measured.
      return MockRunner::runInterval(V, Target);
    }
  };
  ZeroForOne R(2, secondsToNanos(1), [](unsigned, Nanos) { return 0.3; });
  FeedbackController C(smallConfig());
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_GT(T.DegenerateIntervals, 0u);
  ASSERT_FALSE(T.ChosenVersions.empty());
  for (unsigned V : T.ChosenVersions)
    EXPECT_EQ(V, 0u) << "a 0/0 measurement must never win selection";
  // Version 1 contributed no overhead samples and no effective intervals.
  EXPECT_EQ(T.SampledOverheads.find("v1"), nullptr);
  EXPECT_EQ(T.EffectiveSamplingByVersion.count("v1"), 0u);
}

// ------------------- Spanning intervals (Section 4.4 extension) -----------

TEST(SpanningTest, InterruptedMidSamplingPhaseResumesNextOccurrence) {
  // Occurrences of 4 ms against a 10 ms sampling interval: every occurrence
  // ends mid-interval, and the phase state must carry across occurrences
  // until each version has accumulated its full interval.
  FeedbackConfig Config = smallConfig();
  Config.TargetProductionNanos = secondsToNanos(10);
  Config.SpanSectionExecutions = true;
  FeedbackController C(Config);

  unsigned TotalSampled = 0;
  std::vector<unsigned> Chosen;
  Nanos GlobalClock = 0;
  for (int Occ = 0; Occ < 30; ++Occ) {
    MockRunner R(2, millisToNanos(4), [](unsigned V, Nanos) {
      return V == 1 ? 0.05 : 0.5;
    });
    R.Clock = GlobalClock;
    const SectionExecutionTrace T = C.executeSection(R, "S");
    GlobalClock = R.Clock;
    EXPECT_TRUE(R.done());
    TotalSampled += T.SampledIntervals;
    for (unsigned V : T.ChosenVersions)
      Chosen.push_back(V);
  }
  // Exactly one completed sampling interval per version for the whole run,
  // each assembled from multiple interrupted occurrences.
  EXPECT_EQ(TotalSampled, 2u);
  ASSERT_FALSE(Chosen.empty());
  for (unsigned V : Chosen)
    EXPECT_EQ(V, 1u);
}

TEST(SpanningTest, SamplesOncePerProductionBudgetAcrossOccurrences) {
  // Many tiny occurrences: per-occurrence mode samples in each; spanning
  // mode samples once and then stays in production until the budget runs
  // out.
  FeedbackConfig Config = smallConfig();
  Config.TargetProductionNanos = secondsToNanos(10);
  Config.SpanSectionExecutions = true;
  FeedbackController C(Config);

  unsigned TotalSampled = 0;
  for (int Occ = 0; Occ < 20; ++Occ) {
    MockRunner R(3, millisToNanos(50), [](unsigned V, Nanos) {
      return V == 1 ? 0.05 : 0.5;
    });
    const SectionExecutionTrace T = C.executeSection(R, "S");
    TotalSampled += T.SampledIntervals;
  }
  // Three sampling intervals (one per version) for the whole run, instead
  // of up to three per occurrence.
  EXPECT_EQ(TotalSampled, 3u);
}

TEST(SpanningTest, ProductionUsesBestVersionAcrossOccurrences) {
  FeedbackConfig Config = smallConfig();
  Config.TargetProductionNanos = secondsToNanos(10);
  Config.SpanSectionExecutions = true;
  FeedbackController C(Config);

  std::vector<unsigned> Chosen;
  for (int Occ = 0; Occ < 10; ++Occ) {
    MockRunner R(2, millisToNanos(100), [](unsigned V, Nanos) {
      return V == 1 ? 0.02 : 0.6;
    });
    const SectionExecutionTrace T = C.executeSection(R, "S");
    for (unsigned V : T.ChosenVersions)
      Chosen.push_back(V);
  }
  ASSERT_FALSE(Chosen.empty());
  for (unsigned V : Chosen)
    EXPECT_EQ(V, 1u);
}

TEST(SpanningTest, ResamplesAfterProductionBudget) {
  // Production budget of 200 ms over 100 ms occurrences: after two
  // occurrences the controller resamples and can pick a new best version.
  FeedbackConfig Config = smallConfig();
  Config.TargetProductionNanos = millisToNanos(200);
  Config.SpanSectionExecutions = true;
  FeedbackController C(Config);

  Nanos GlobalClock = 0;
  unsigned SamplingPhases = 0;
  std::vector<unsigned> Chosen;
  for (int Occ = 0; Occ < 12; ++Occ) {
    // Version 0 best before 600 ms of virtual time, version 1 after.
    MockRunner R(2, millisToNanos(100), [](unsigned V, Nanos Now) {
      const bool Early = Now < millisToNanos(600);
      if (V == 0)
        return Early ? 0.05 : 0.6;
      return Early ? 0.6 : 0.05;
    });
    R.Clock = GlobalClock;
    const SectionExecutionTrace T = C.executeSection(R, "S");
    GlobalClock = R.Clock;
    SamplingPhases += T.SamplingPhases;
    for (unsigned V : T.ChosenVersions)
      Chosen.push_back(V);
  }
  EXPECT_GT(SamplingPhases, 1u);
  ASSERT_GE(Chosen.size(), 2u);
  EXPECT_EQ(Chosen.front(), 0u);
  EXPECT_EQ(Chosen.back(), 1u);
}

TEST(SpanningTest, StatePerSectionIsIndependent) {
  FeedbackConfig Config = smallConfig();
  Config.TargetProductionNanos = secondsToNanos(10);
  Config.SpanSectionExecutions = true;
  FeedbackController C(Config);

  MockRunner RA(2, millisToNanos(50),
                [](unsigned V, Nanos) { return V == 0 ? 0.05 : 0.5; });
  MockRunner RB(2, millisToNanos(50),
                [](unsigned V, Nanos) { return V == 1 ? 0.05 : 0.5; });
  const SectionExecutionTrace TA = C.executeSection(RA, "A");
  const SectionExecutionTrace TB = C.executeSection(RB, "B");
  // Both sections sample their own candidates independently.
  EXPECT_GT(TA.SampledIntervals + TB.SampledIntervals, 0u);
  unsigned BestA = 99, BestB = 99;
  if (!TA.ChosenVersions.empty())
    BestA = TA.ChosenVersions.front();
  if (!TB.ChosenVersions.empty())
    BestB = TB.ChosenVersions.front();
  for (int I = 0; I < 10; ++I) {
    MockRunner R2A(2, millisToNanos(50),
                   [](unsigned V, Nanos) { return V == 0 ? 0.05 : 0.5; });
    MockRunner R2B(2, millisToNanos(50),
                   [](unsigned V, Nanos) { return V == 1 ? 0.05 : 0.5; });
    const auto T2A = C.executeSection(R2A, "A");
    const auto T2B = C.executeSection(R2B, "B");
    if (!T2A.ChosenVersions.empty())
      BestA = T2A.ChosenVersions.front();
    if (!T2B.ChosenVersions.empty())
      BestB = T2B.ChosenVersions.front();
  }
  EXPECT_EQ(BestA, 0u);
  EXPECT_EQ(BestB, 1u);
}

// ------------------- Resilience (quarantine / watchdog) --------------------

TEST(ResilienceTest, QuarantineExcludesRepeatOffenderFromSampling) {
  // Version 1 is catastrophically bad every time it is measured. Two strikes
  // quarantine it; afterwards sampling phases run without it.
  MockRunner R(2, secondsToNanos(3), [](unsigned V, Nanos) {
    return V == 1 ? 0.95 : 0.1;
  });
  FeedbackConfig Config = smallConfig();
  Config.QuarantineStrikes = 2;
  Config.QuarantineOverheadLimit = 0.9;
  Config.QuarantineBackoffPhases = 64; // No re-probe within this run.
  FeedbackController C(Config);
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_EQ(T.Quarantines, 1u);
  EXPECT_EQ(T.Reprobes, 0u);
  // Sampled in the two striking phases, then never again.
  EXPECT_EQ(R.IntervalsRun[1], 2u);
  EXPECT_GT(T.SamplingPhases, 2u);
  for (unsigned V : T.ChosenVersions)
    EXPECT_EQ(V, 0u);
}

TEST(ResilienceTest, ReprobeClearsQuarantineWhenVersionRecovers) {
  // Version 1 is catastrophic before 2.5 virtual seconds and excellent
  // afterwards. It gets quarantined, fails one decayed re-probe (doubling
  // the backoff), sits out a phase, then passes the next re-probe and wins
  // production.
  MockRunner R(2, secondsToNanos(4), [](unsigned V, Nanos Now) {
    if (V == 0)
      return 0.2;
    return Now < secondsToNanos(2.5) ? 0.95 : 0.02;
  });
  FeedbackConfig Config = smallConfig();
  Config.QuarantineStrikes = 1;
  Config.QuarantineOverheadLimit = 0.9;
  Config.QuarantineBackoffPhases = 1;
  FeedbackController C(Config);
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_GE(T.Quarantines, 2u); // Initial strike-out plus a failed re-probe.
  EXPECT_EQ(T.Reprobes, 1u);
  // The quarantine kept version 1 out of at least one sampling phase
  // (IntervalsRun also counts production intervals, so count samples).
  const Series *V1 = T.SampledOverheads.find("v1");
  ASSERT_NE(V1, nullptr);
  EXPECT_LT(V1->size(), T.SamplingPhases);
  ASSERT_FALSE(T.ChosenVersions.empty());
  EXPECT_EQ(T.ChosenVersions.front(), 0u);
  EXPECT_EQ(T.ChosenVersions.back(), 1u);
}

TEST(ResilienceTest, HysteresisNeverHoldsQuarantinedIncumbent) {
  // The incumbent turns catastrophic after 0.5 virtual seconds. A huge
  // hysteresis margin would hold it forever; quarantine must override the
  // hold and hand production to the challenger.
  const auto Overhead = [](unsigned V, Nanos Now) {
    if (V == 1)
      return 0.25;
    return Now < millisToNanos(500) ? 0.05 : 0.97;
  };
  FeedbackConfig Config = smallConfig();
  Config.SwitchHysteresis = 1.0; // Never switch on margin alone.
  Config.QuarantineStrikes = 1;
  Config.QuarantineOverheadLimit = 0.9;
  Config.QuarantineBackoffPhases = 64;
  MockRunner R(2, secondsToNanos(2.5), Overhead);
  FeedbackController C(Config);
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_GE(T.Quarantines, 1u);
  ASSERT_GE(T.ChosenVersions.size(), 2u);
  EXPECT_EQ(T.ChosenVersions.front(), 0u);
  EXPECT_EQ(T.ChosenVersions.back(), 1u);

  // Control: with quarantine disabled the same hysteresis margin rides the
  // bad incumbent to the end of the run -- the override above really is the
  // quarantine, not the margin arithmetic.
  FeedbackConfig NoQuarantine = smallConfig();
  NoQuarantine.SwitchHysteresis = 1.0;
  MockRunner R2(2, secondsToNanos(2.5), Overhead);
  FeedbackController C2(NoQuarantine);
  const SectionExecutionTrace T2 = C2.executeSection(R2, "S");
  EXPECT_GT(T2.HysteresisHolds, 0u);
  for (unsigned V : T2.ChosenVersions)
    EXPECT_EQ(V, 0u);
}

TEST(ResilienceTest, AllVersionsQuarantinedDegradesToLastKnownGood) {
  // Both versions turn catastrophic after 0.5 virtual seconds. Once both
  // are quarantined the controller pins the last version that completed
  // production (version 0) instead of aborting, and failed re-probes keep
  // re-quarantining with doubled backoff.
  MockRunner R(2, secondsToNanos(1.5), [](unsigned V, Nanos Now) {
    if (Now < millisToNanos(500))
      return V == 0 ? 0.1 : 0.2;
    return V == 0 ? 0.96 : 0.97;
  });
  FeedbackConfig Config = smallConfig();
  Config.QuarantineStrikes = 1;
  Config.QuarantineOverheadLimit = 0.9;
  Config.QuarantineBackoffPhases = 3;
  FeedbackController C(Config);
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_GE(T.DegradedPhases, 2u);
  EXPECT_GE(T.Quarantines, 2u);
  EXPECT_EQ(T.Reprobes, 0u); // Nothing ever recovers in this run.
  ASSERT_FALSE(T.ChosenVersions.empty());
  for (unsigned V : T.ChosenVersions)
    EXPECT_EQ(V, 0u); // Last known-good, never the worse version 1.
  EXPECT_TRUE(R.done()); // Degraded mode still finishes the work.
}

TEST(ResilienceTest, SpanningModeDegradesWhenEverythingIsQuarantined) {
  // Same degraded pin through the spanning-phase state machine: both
  // versions strike out in the first spanning sampling phase and every
  // later phase starts with an empty sampling order.
  MockRunner R(2, millisToNanos(200), [](unsigned V, Nanos) {
    return V == 0 ? 0.96 : 0.97;
  });
  FeedbackConfig Config = smallConfig();
  Config.SpanSectionExecutions = true;
  Config.TargetProductionNanos = millisToNanos(100);
  Config.QuarantineStrikes = 1;
  Config.QuarantineOverheadLimit = 0.9;
  Config.QuarantineBackoffPhases = 64;
  FeedbackController C(Config);
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_EQ(T.Quarantines, 2u);
  EXPECT_GE(T.DegradedPhases, 1u);
  for (unsigned V : T.ChosenVersions)
    EXPECT_EQ(V, 0u); // No production ever completed: pin the first version.
  EXPECT_TRUE(R.done());
}

TEST(ResilienceTest, WatchdogForcesResampleWithoutDriftBaseline) {
  // A single-version section whose overhead explodes mid-production. Drift
  // detection is off (threshold 0), so only the watchdog can cut the
  // production phase short and force a resample.
  MockRunner R(1, millisToNanos(800), [](unsigned, Nanos Now) {
    return Now < millisToNanos(500) ? 0.1 : 0.95;
  });
  FeedbackConfig Config = smallConfig();
  Config.TargetProductionNanos = secondsToNanos(5);
  Config.ProductionSliceNanos = millisToNanos(100);
  Config.WatchdogBadSlices = 2;
  Config.WatchdogOverheadLimit = 0.9;
  FeedbackController C(Config);
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_GE(T.WatchdogResamples, 1u);
  EXPECT_GE(T.SamplingPhases, 2u);
  EXPECT_EQ(T.EarlyResamples, 0u); // Drift never fired; the watchdog did.
  EXPECT_TRUE(R.done());
}

TEST(ResilienceTest, WatchdogEscalatesStreakAfterEachFiring) {
  // When every production interval is bad, each firing doubles the required
  // streak (bounded): the forced resamples thin out instead of flapping
  // once per slice pair.
  MockRunner R(1, millisToNanos(600), [](unsigned, Nanos) { return 0.95; });
  FeedbackConfig Config = smallConfig();
  Config.TargetProductionNanos = secondsToNanos(5);
  Config.ProductionSliceNanos = millisToNanos(100);
  Config.WatchdogBadSlices = 2;
  Config.WatchdogOverheadLimit = 0.9;
  FeedbackController C(Config);
  const SectionExecutionTrace T = C.executeSection(R, "S");
  ASSERT_GE(T.WatchdogResamples, 2u);
  // Every production slice was bad. Without escalation the watchdog would
  // fire once per WatchdogBadSlices slices; the doubling schedule must keep
  // it strictly below that rate.
  const unsigned ProductionIntervals =
      static_cast<unsigned>(R.IntervalsRun[0]) - T.SampledIntervals;
  EXPECT_LT(T.WatchdogResamples, ProductionIntervals / 2);
  EXPECT_TRUE(R.done());
}

// ------------------------- Sampling strategies ------------------------------

/// Everything one drained sampling phase produced, for protocol assertions.
struct DrivenPhase {
  std::vector<unsigned> Requested;
  Nanos RequestedNanos = 0;
  std::map<unsigned, double> Estimates;
  std::vector<SearchEvent> Events;
};

/// Drives \p S through one full phase over \p Cands, answering every request
/// from the fixed overhead table \p OverheadOf.
DrivenPhase drivePhase(SamplingStrategy &S, const std::vector<unsigned> &Cands,
                       std::function<double(unsigned)> OverheadOf) {
  std::vector<std::string> Labels;
  for (unsigned V = 0; V <= *std::max_element(Cands.begin(), Cands.end());
       ++V)
    Labels.push_back("v" + std::to_string(V));
  DrivenPhase Out;
  S.beginPhase(Cands, Labels);
  while (const std::optional<SampleRequest> Req = S.next()) {
    Out.Requested.push_back(Req->Version);
    Out.RequestedNanos += Req->SliceNanos;
    if (const std::optional<double> Est =
            S.report(Req->Version, OverheadOf(Req->Version)))
      Out.Estimates[Req->Version] = *Est;
    for (const SearchEvent &E : S.takeEvents())
      Out.Events.push_back(E);
  }
  for (const SearchEvent &E : S.takeEvents())
    Out.Events.push_back(E);
  return Out;
}

std::unique_ptr<SamplingStrategy> makeStrategy(SamplerKind K) {
  FeedbackConfig Config = smallConfig();
  Config.Sampler = K;
  return createSamplingStrategy(Config);
}

TEST(SamplingStrategyTest, NamesRoundTripAndRejectUnknown) {
  for (SamplerKind K :
       {SamplerKind::Exhaustive, SamplerKind::Halving, SamplerKind::Ucb})
    EXPECT_EQ(parseSamplerName(samplerName(K)), K);
  EXPECT_FALSE(parseSamplerName("bogus"));
  EXPECT_EQ(samplerNames().size(), 3u);
}

TEST(SamplingStrategyTest, ExhaustiveRequestsEachCandidateOnceInOrder) {
  const auto S = makeStrategy(SamplerKind::Exhaustive);
  const DrivenPhase P =
      drivePhase(*S, {2, 0, 1}, [](unsigned V) { return 0.1 * (V + 1); });
  EXPECT_EQ(P.Requested, (std::vector<unsigned>{2, 0, 1}));
  EXPECT_EQ(P.RequestedNanos, 3 * smallConfig().TargetSamplingNanos);
  // The measurement passes through as the estimate; no search events.
  EXPECT_DOUBLE_EQ(P.Estimates.at(2), 0.3);
  EXPECT_TRUE(P.Events.empty());
}

TEST(SamplingStrategyTest, HalvingPrunesToTheBestWithinBudget) {
  const auto S = makeStrategy(SamplerKind::Halving);
  const DrivenPhase P = drivePhase(*S, {0, 1, 2, 3, 4, 5, 6, 7},
                                   [](unsigned V) { return 0.1 * V; });
  // The budget is half of exhaustive's 8 full-length intervals.
  EXPECT_LE(P.RequestedNanos, 4 * smallConfig().TargetSamplingNanos);
  // Three rounds prune 4 + 2 + 1 versions; the best version survives and
  // is never pruned.
  unsigned Prunes = 0;
  for (const SearchEvent &E : P.Events)
    if (E.K == SearchEvent::Kind::Prune) {
      ++Prunes;
      EXPECT_NE(E.Version, 0u);
    }
  EXPECT_EQ(Prunes, 7u);
  // Every round re-measures the survivors, so the winner has several
  // requests and a current estimate.
  EXPECT_GE(std::count(P.Requested.begin(), P.Requested.end(), 0u), 2);
  EXPECT_DOUBLE_EQ(P.Estimates.at(0), 0.0);
}

TEST(SamplingStrategyTest, UcbCoversEveryArmWithinBudget) {
  const auto S = makeStrategy(SamplerKind::Ucb);
  const DrivenPhase P = drivePhase(
      *S, {0, 1, 2, 3, 4}, [](unsigned V) { return V == 3 ? 0.02 : 0.4; });
  EXPECT_LE(P.RequestedNanos,
            static_cast<Nanos>(0.5 * 5 * smallConfig().TargetSamplingNanos));
  // Coverage: every arm is measured at least once (nothing is ruled out on
  // the prior alone), so no prune events are emitted at budget exhaustion.
  for (unsigned V : {0u, 1u, 2u, 3u, 4u}) {
    EXPECT_GE(std::count(P.Requested.begin(), P.Requested.end(), V), 1)
        << "arm " << V;
    EXPECT_TRUE(P.Estimates.count(V)) << "arm " << V;
  }
  for (const SearchEvent &E : P.Events)
    EXPECT_EQ(E.K, SearchEvent::Kind::Promote);
  // The spare budget refines the empirical leader.
  EXPECT_GE(std::count(P.Requested.begin(), P.Requested.end(), 3u), 2);
  ASSERT_FALSE(P.Events.empty());
  EXPECT_EQ(P.Events.back().Version, 3u);
}

TEST(SamplingStrategyTest, DisqualifiedVersionIsNeverRequestedAgain) {
  for (SamplerKind K : {SamplerKind::Halving, SamplerKind::Ucb}) {
    const auto S = makeStrategy(K);
    std::vector<std::string> Labels{"v0", "v1", "v2", "v3"};
    S->beginPhase({0, 1, 2, 3}, Labels);
    bool Disqualified = false;
    while (const std::optional<SampleRequest> Req = S->next()) {
      EXPECT_FALSE(Disqualified && Req->Version == 1u)
          << samplerName(K) << " re-requested a disqualified version";
      S->report(Req->Version, 0.1 * (Req->Version + 1));
      if (Req->Version == 1u && !Disqualified) {
        S->disqualify(1);
        Disqualified = true;
      }
    }
    EXPECT_TRUE(Disqualified);
  }
}

TEST(ResilienceTest, QuarantineExcludesOffenderUnderEveryStrategy) {
  // The ResilienceTest quarantine guarantee is strategy-independent:
  // version 1 strikes out under halving and ucb exactly as it does under
  // the exhaustive sampler, and later phases never touch it.
  for (SamplerKind K : {SamplerKind::Halving, SamplerKind::Ucb}) {
    MockRunner R(2, secondsToNanos(3), [](unsigned V, Nanos) {
      return V == 1 ? 0.95 : 0.1;
    });
    FeedbackConfig Config = smallConfig();
    Config.Sampler = K;
    Config.QuarantineStrikes = 2;
    Config.QuarantineOverheadLimit = 0.9;
    Config.QuarantineBackoffPhases = 64; // No re-probe within this run.
    FeedbackController C(Config);
    const SectionExecutionTrace T = C.executeSection(R, "S");
    EXPECT_EQ(T.Quarantines, 1u) << samplerName(K);
    EXPECT_EQ(T.Reprobes, 0u) << samplerName(K);
    // Two strikes and out: the quarantined version is measured exactly
    // twice across the whole run, then excluded from every later phase.
    EXPECT_EQ(R.IntervalsRun[1], 2u) << samplerName(K);
    EXPECT_GT(T.SamplingPhases, 2u) << samplerName(K);
    for (unsigned V : T.ChosenVersions)
      EXPECT_EQ(V, 0u) << samplerName(K);
    EXPECT_TRUE(R.done()) << samplerName(K);
  }
}

TEST(ResilienceTest, DegradedModePinsLastKnownGoodUnderPartialSampling) {
  // Both versions turn catastrophic after 0.5 virtual seconds, under the
  // partial-sampling strategies this time: degraded mode must still pin
  // the last version that completed production instead of aborting.
  for (SamplerKind K : {SamplerKind::Halving, SamplerKind::Ucb}) {
    MockRunner R(2, secondsToNanos(1.5), [](unsigned V, Nanos Now) {
      if (Now < millisToNanos(500))
        return V == 0 ? 0.1 : 0.2;
      return V == 0 ? 0.96 : 0.97;
    });
    FeedbackConfig Config = smallConfig();
    Config.Sampler = K;
    Config.QuarantineStrikes = 1;
    Config.QuarantineOverheadLimit = 0.9;
    Config.QuarantineBackoffPhases = 64;
    FeedbackController C(Config);
    const SectionExecutionTrace T = C.executeSection(R, "S");
    EXPECT_GE(T.DegradedPhases, 1u) << samplerName(K);
    EXPECT_EQ(T.Quarantines, 2u) << samplerName(K);
    ASSERT_FALSE(T.ChosenVersions.empty()) << samplerName(K);
    for (unsigned V : T.ChosenVersions)
      EXPECT_EQ(V, 0u) << samplerName(K);
    EXPECT_TRUE(R.done()) << samplerName(K);
  }
}

TEST(ResilienceTest, HysteresisNeverHoldsPrunedIncumbent) {
  // The incumbent degrades mid-run and halving prunes it in a later phase.
  // Pruning resets its sampled overhead, so even a margin that would never
  // switch on overhead alone cannot hold it: hysteresis compares against
  // the incumbent's estimate, and a pruned incumbent has none.
  const auto Overhead = [](unsigned V, Nanos Now) {
    if (V == 0)
      return Now < millisToNanos(1500) ? 0.05 : 0.6;
    if (V == 1)
      return 0.10;
    return V == 2 ? 0.7 : 0.8;
  };
  FeedbackConfig Config = smallConfig();
  Config.Sampler = SamplerKind::Halving;
  Config.SwitchHysteresis = 1.0; // Never switch on margin alone.
  MockRunner R(4, secondsToNanos(3), Overhead);
  FeedbackController C(Config);
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_GT(T.Prunes, 0u);
  ASSERT_GE(T.ChosenVersions.size(), 2u);
  EXPECT_EQ(T.ChosenVersions.front(), 0u);
  EXPECT_EQ(T.ChosenVersions.back(), 1u);

  // Control: the exhaustive sampler never prunes, so the same margin rides
  // the degraded incumbent to the end of the run.
  FeedbackConfig Exhaustive = smallConfig();
  Exhaustive.SwitchHysteresis = 1.0;
  MockRunner R2(4, secondsToNanos(3), Overhead);
  FeedbackController C2(Exhaustive);
  const SectionExecutionTrace T2 = C2.executeSection(R2, "S");
  EXPECT_GT(T2.HysteresisHolds, 0u);
  for (unsigned V : T2.ChosenVersions)
    EXPECT_EQ(V, 0u);
}

TEST(ControllerTest, StaleHistoryNameIsDiagnosedAndCounted) {
  // A recorded best that no longer names any version must not silently
  // vanish: the miss is counted in the metrics registry and the order
  // falls back to space order.
  PolicyHistory History;
  History.recordBest("S", "v9-gone");
  FeedbackConfig Config = smallConfig();
  Config.UsePolicyOrdering = true;
  FeedbackController C(Config, &History);
  const uint64_t Before =
      obs::globalMetrics().counterValue("fb.history_misses");
  EXPECT_EQ(C.samplingOrder(mockLabels(3), "S"),
            (std::vector<unsigned>{0, 1, 2}));
  EXPECT_EQ(obs::globalMetrics().counterValue("fb.history_misses"),
            Before + 1);
  // Every miss counts, even for an already-diagnosed (section, name) pair.
  C.samplingOrder(mockLabels(3), "S");
  EXPECT_EQ(obs::globalMetrics().counterValue("fb.history_misses"),
            Before + 2);
  // A resolvable name is not a miss.
  History.recordBest("S", "v2");
  C.samplingOrder(mockLabels(3), "S");
  EXPECT_EQ(obs::globalMetrics().counterValue("fb.history_misses"),
            Before + 2);
}

// ---------------------------- Driver ---------------------------------------

/// Backend over MockRunners: each beginSection creates a fresh runner.
class MockBackend : public ExecutionBackend {
public:
  explicit MockBackend(std::function<double(unsigned, Nanos)> OverheadFn)
      : OverheadFn(std::move(OverheadFn)) {}

  void runSerial(Nanos Dur) override { Clock += Dur; }
  std::unique_ptr<IntervalRunner>
  beginSection(const std::string &) override {
    auto R = std::make_unique<MockRunner>(2, secondsToNanos(1), OverheadFn);
    R->Clock = Clock;
    // The driver destroys the runner before reading backend.now(); the
    // runner publishes its final state back here on destruction.
    R->OnDestroy = [this](const MockRunner &Done) {
      Clock = Done.Clock;
      LastIntervals = Done.IntervalsRun;
    };
    return R;
  }
  Nanos now() const override { return Clock; }

  Nanos Clock = 0;
  std::map<unsigned, unsigned> LastIntervals;
  std::function<double(unsigned, Nanos)> OverheadFn;
};

TEST(DriverTest, RunsScheduleAndAggregates) {
  MockBackend Backend([](unsigned V, Nanos) { return V == 0 ? 0.1 : 0.4; });
  Schedule Sched{Phase::serial(secondsToNanos(1)), Phase::parallel("A"),
                 Phase::parallel("A")};
  RunOptions Options;
  Options.Mode = ExecMode::Dynamic;
  Options.Config = smallConfig();
  const RunResult Result = runSchedule(Backend, Sched, Options);
  EXPECT_EQ(Result.Occurrences.size(), 2u);
  EXPECT_GT(Result.ParallelStats.ExecNanos, 0);
  const SeriesSet Merged = Result.mergedOverheadSeries("A");
  EXPECT_EQ(Merged.all().size(), 2u); // Two version labels.
}

TEST(DriverTest, FixedModeRunsVersionZeroOnly) {
  MockBackend Backend([](unsigned, Nanos) { return 0.2; });
  Schedule Sched{Phase::parallel("A")};
  RunOptions Options;
  Options.Mode = ExecMode::Fixed;
  const RunResult Result = runSchedule(Backend, Sched, Options);
  ASSERT_EQ(Result.Occurrences.size(), 1u);
  EXPECT_TRUE(Result.Occurrences[0].ChosenVersions.empty());
  ASSERT_EQ(Backend.LastIntervals.size(), 1u);
  EXPECT_GT(Backend.LastIntervals[0], 0u);
}

} // namespace
