//===- tests/MiscTest.cpp - Coverage for factory, harness, code size -------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/Factory.h"
#include "apps/Harness.h"
#include "ir/Builder.h"
#include "ir/Printer.h"
#include "ir/Verifier.h"
#include "support/RootFinding.h"
#include "rt/Stats.h"
#include "xform/CodeSize.h"

#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::ir;
using namespace dynfb::xform;

namespace {

// ---------------------------- Factory --------------------------------------

TEST(FactoryTest, CreatesAllKnownApps) {
  for (const std::string &Name : appNames()) {
    auto App = createApp(Name, 1.0 / 64.0);
    ASSERT_NE(App, nullptr) << Name;
    EXPECT_FALSE(App->program().Sections.empty()) << Name;
    EXPECT_FALSE(App->schedule().empty()) << Name;
  }
}

TEST(FactoryTest, UnknownAppIsNull) {
  EXPECT_EQ(createApp("nope"), nullptr);
  EXPECT_EQ(createApp(""), nullptr);
}

// ---------------------------- Harness --------------------------------------

TEST(HarnessTest, SerialFlavourRunsLockFree) {
  auto App = createApp("water", 1.0 / 32.0);
  const fb::RunResult R = runApp(*App, 1, Flavour::Serial);
  EXPECT_GT(R.TotalNanos, 0);
  EXPECT_EQ(R.ParallelStats.AcquireReleasePairs, 0u);
}

TEST(HarnessTest, PolicyHistoryIsThreadedThrough) {
  auto App = createApp("water", 1.0 / 32.0);
  fb::FeedbackConfig Config;
  Config.UsePolicyOrdering = true;
  fb::PolicyHistory History;
  runApp(*App, 8, Flavour::Dynamic, PolicyKind::Original, Config, &History);
  EXPECT_TRUE(History.lastBest("INTERF").has_value());
  EXPECT_TRUE(History.lastBest("POTENG").has_value());
}

// ---------------------------- OverheadStats --------------------------------

TEST(OverheadStatsTest, WaitingProportion) {
  rt::OverheadStats S;
  S.ExecNanos = 1000;
  S.WaitNanos = 250;
  EXPECT_DOUBLE_EQ(S.waitingProportion(), 0.25);
  rt::OverheadStats Empty;
  EXPECT_DOUBLE_EQ(Empty.waitingProportion(), 0.0);
}

TEST(OverheadStatsTest, MergeAccumulatesAllFields) {
  rt::OverheadStats A, B;
  A.AcquireReleasePairs = 3;
  A.FailedAcquires = 1;
  A.LockOpNanos = 10;
  A.WaitNanos = 20;
  A.ExecNanos = 100;
  B = A;
  A.merge(B);
  EXPECT_EQ(A.AcquireReleasePairs, 6u);
  EXPECT_EQ(A.FailedAcquires, 2u);
  EXPECT_EQ(A.LockOpNanos, 20);
  EXPECT_EQ(A.WaitNanos, 40);
  EXPECT_EQ(A.ExecNanos, 200);
}

// ---------------------------- CodeSize -------------------------------------

TEST(CodeSizeTest2, MethodBytesArithmetic) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Meth = M.createMethod("m", C);
  MethodBuilder B(M, Meth);
  B.compute();
  B.acquire(Receiver::thisObj());
  B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
  B.release(Receiver::thisObj());

  const CodeSizeModel Model;
  EXPECT_EQ(Model.methodBytes(*Meth, false),
            Model.MethodOverheadBytes + Model.ComputeBytes +
                2 * Model.LockOpBytes + Model.UpdateBytes);
  EXPECT_EQ(Model.methodBytes(*Meth, true),
            Model.MethodOverheadBytes + Model.ComputeBytes +
                2 * Model.LockOpInstrumentedBytes + Model.UpdateBytes);
}

TEST(CodeSizeTest2, ClosureBytesDeduplicatesIdenticalMethods) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  auto MakeLeaf = [&](const char *Name) {
    Method *Leaf = M.createMethod(Name, C);
    Leaf->body().push_back(
        M.createUpdate(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0)));
    return Leaf;
  };
  Method *LeafA = MakeLeaf("a");
  Method *LeafB = MakeLeaf("b"); // Structurally identical to a.
  Method *Root1 = M.createMethod("r1", C);
  Root1->body().push_back(M.createCall(LeafA, Receiver::thisObj(), {}));
  Method *Root2 = M.createMethod("r2", C);
  Root2->body().push_back(M.createCall(LeafB, Receiver::thisObj(), {}));

  const CodeSizeModel Model;
  // r1 and r2 are structurally identical too, so the whole union collapses
  // to one root + one leaf.
  const uint64_t Bytes = Model.closureBytes({Root1, Root2}, false);
  EXPECT_EQ(Bytes, Model.methodBytes(*Root1, false) +
                       Model.methodBytes(*LeafA, false));
}

// ---------------------------- Verifier typing ------------------------------

TEST(VerifierTypingTest, CallReceiverClassMismatchRejected) {
  Module M("m");
  ClassDecl *A = M.createClass("a");
  ClassDecl *B = M.createClass("b");
  Method *CalleeOfB = M.createMethod("f", B);
  Method *Caller = M.createMethod("g", A);
  // Call a b-method with an a-typed receiver.
  Caller->body().push_back(M.createCall(CalleeOfB, Receiver::thisObj(), {}));
  const auto Errors = verifyMethod(*Caller);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("does not match callee owner"),
            std::string::npos);
}

TEST(VerifierTypingTest, ArrayArgToSingleParamRejected) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Callee = M.createMethod("f", C);
  Callee->addParam(Param{"x", C, /*IsArray=*/false});
  Method *Caller = M.createMethod("g", C);
  Caller->addParam(Param{"arr", C, /*IsArray=*/true});
  // Pass the whole array where a single object is expected: the argument
  // receiver itself is malformed (a Param receiver cannot name an array).
  Caller->body().push_back(
      M.createCall(Callee, Receiver::thisObj(), {Receiver::param(0)}));
  const auto Errors = verifyMethod(*Caller);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("malformed"), std::string::npos);
}

// ---------------------------- Root finding edges ---------------------------

TEST(RootFindingEdgeTest, NewtonRejectsNoBracket) {
  auto F = [](double X) { return X * X + 1.0; };
  auto DF = [](double X) { return 2.0 * X; };
  EXPECT_FALSE(newtonSafeguarded(F, DF, 0.0, -1.0, 1.0).has_value());
}

TEST(RootFindingEdgeTest, NewtonSurvivesZeroDerivative) {
  // f(x) = x^3 has f'(0) = 0; the safeguard bisects instead of dividing
  // by zero.
  auto F = [](double X) { return X * X * X; };
  auto DF = [](double X) { return 3.0 * X * X; };
  const auto Root = newtonSafeguarded(F, DF, 0.0, -1.0, 2.0);
  ASSERT_TRUE(Root.has_value());
  EXPECT_NEAR(Root->X, 0.0, 1e-6);
}

// ---------------------------- Loop context ---------------------------------

TEST(LoopCtxTest, IndexOfFindsInnermostMatch) {
  rt::LoopCtx Ctx;
  Ctx.Loops.emplace_back(3u, 7u);
  Ctx.Loops.emplace_back(5u, 2u);
  EXPECT_EQ(Ctx.indexOf(3), 7u);
  EXPECT_EQ(Ctx.indexOf(5), 2u);
}

// ---------------------------- Printer receivers ----------------------------

TEST(PrinterTest2, ReceiverSpellings) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Meth = M.createMethod("m", C);
  Meth->addParam(Param{"solo", C, false});
  Meth->addParam(Param{"arr", C, true});
  EXPECT_EQ(printReceiver(Receiver::thisObj(), *Meth), "this");
  EXPECT_EQ(printReceiver(Receiver::param(0), *Meth), "solo");
  EXPECT_EQ(printReceiver(Receiver::paramIndexed(1, 4), *Meth), "arr[i4]");
}

} // namespace
