//===- tests/TheoryTest.cpp - Unit tests for the Section 5 analysis -------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/Integration.h"
#include "support/Random.h"
#include "theory/Analysis.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::theory;

namespace {

TEST(TheoryTest, OverheadFunctionsAtBoundaries) {
  const double V = 0.3, Alpha = 0.065;
  // At t = 0 both bounds equal the sampled overhead v.
  EXPECT_NEAR(worstCaseOverheadSelected(0, V, Alpha), V, 1e-12);
  EXPECT_NEAR(bestCaseOverheadOptimal(0, V, Alpha), V, 1e-12);
  // As t grows the selected policy's bound rises toward 1, the optimal
  // policy's bound falls toward 0.
  EXPECT_GT(worstCaseOverheadSelected(100, V, Alpha), 0.99);
  EXPECT_LT(bestCaseOverheadOptimal(100, V, Alpha), 0.01);
}

TEST(TheoryTest, WorkDynamicMatchesNumericIntegration) {
  Rng R(17);
  for (int I = 0; I < 20; ++I) {
    const double V = R.uniform(0.0, 1.0);
    const double Alpha = R.uniform(0.01, 0.5);
    const double P = R.uniform(0.1, 50.0);
    auto Integrand = [&](double T) {
      return 1.0 - worstCaseOverheadSelected(T, V, Alpha);
    };
    EXPECT_NEAR(workDynamic(P, V, Alpha), integrate(Integrand, 0.0, P),
                1e-6);
  }
}

TEST(TheoryTest, WorkOptimalMatchesNumericIntegration) {
  Rng R(18);
  for (int I = 0; I < 20; ++I) {
    const double V = R.uniform(0.0, 1.0);
    const double Alpha = R.uniform(0.01, 0.5);
    const double P = R.uniform(0.1, 50.0);
    auto Integrand = [&](double T) {
      return 1.0 - bestCaseOverheadOptimal(T, V, Alpha);
    };
    EXPECT_NEAR(workOptimal(P, V, Alpha), integrate(Integrand, 0.0, P),
                1e-6);
  }
}

TEST(TheoryTest, Equation6IndependentOfV) {
  // Work1(P) + SN - Work0(P) must equal Eq. 6 for every sampled overhead v.
  const double Alpha = 0.065, S = 1.0;
  const unsigned N = 2;
  const double P = 7.0;
  for (double V : {0.0, 0.2, 0.5, 0.9}) {
    const double Diff = (workOptimal(P, V, Alpha) +
                         S * static_cast<double>(N)) -
                        workDynamic(P, V, Alpha);
    EXPECT_NEAR(Diff, workDifference(P, S, N, Alpha), 1e-9);
  }
}

TEST(TheoryTest, FeasibilityMatchesDefinitionOne) {
  // Eq. 7 must be equivalent to workDifference <= eps * (P + SN).
  const AnalysisParams Params = AnalysisParams::figure3Example();
  for (double P : {0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 60.0}) {
    const bool ByDefinition =
        workDifference(P, Params.S, Params.N, Params.Alpha) <=
        Params.Epsilon * (P + Params.S * Params.N);
    EXPECT_EQ(isFeasible(P, Params), ByDefinition) << "P=" << P;
  }
}

TEST(TheoryTest, Figure3FeasibleRegion) {
  // The paper's example values: S = 1, N = 2, alpha = 0.065, eps = 0.5.
  const AnalysisParams Params = AnalysisParams::figure3Example();
  const auto Region = feasibleRegion(Params);
  ASSERT_TRUE(Region.has_value());
  const auto [Lo, Hi] = *Region;
  EXPECT_GT(Lo, 1.0);
  EXPECT_LT(Lo, 4.0);
  EXPECT_GT(Hi, 18.0);
  EXPECT_LT(Hi, 23.0);
  // Edges are roots, interior feasible, exterior not.
  EXPECT_TRUE(isFeasible(0.5 * (Lo + Hi), Params));
  EXPECT_FALSE(isFeasible(Lo * 0.5, Params));
  EXPECT_FALSE(isFeasible(Hi * 1.2, Params));
}

TEST(TheoryTest, InfeasibleWhenSamplingTooLong) {
  AnalysisParams Params = AnalysisParams::figure3Example();
  Params.S = 100.0; // Sampling cost can never be amortized.
  EXPECT_FALSE(feasibleRegion(Params).has_value());
}

TEST(TheoryTest, RegionGrowsWithEpsilon) {
  AnalysisParams Tight = AnalysisParams::figure3Example();
  Tight.Epsilon = 0.4;
  AnalysisParams Loose = AnalysisParams::figure3Example();
  Loose.Epsilon = 0.6;
  const auto RT = feasibleRegion(Tight);
  const auto RL = feasibleRegion(Loose);
  ASSERT_TRUE(RT.has_value());
  ASSERT_TRUE(RL.has_value());
  // "As eps increases, the range of feasible values for P also increases."
  EXPECT_LT(RL->first, RT->first);
  EXPECT_GT(RL->second, RT->second);
}

TEST(TheoryTest, RegionShrinksWithSamplingInterval) {
  AnalysisParams Small = AnalysisParams::figure3Example();
  Small.S = 0.5;
  AnalysisParams Large = AnalysisParams::figure3Example();
  Large.S = 2.0;
  const auto RS = feasibleRegion(Small);
  const auto RL = feasibleRegion(Large);
  ASSERT_TRUE(RS.has_value());
  ASSERT_TRUE(RL.has_value());
  // "As S increases, the range of feasible values for P decreases."
  EXPECT_LT(RS->first, RL->first);
  EXPECT_GT(RS->second, RL->second);
}

TEST(TheoryTest, BestEpsilonDegradesWithSpaceSize) {
  // The N-version bound: sampling cost scales with |space|, so the best
  // achievable eps at the optimal production interval worsens as
  // adaptation dimensions multiply N (3 policies -> 9 combinations).
  const double Alpha = 0.065, S = 1.0;
  const double E3 = bestAchievableEpsilon(S, 3, Alpha);
  const double E9 = bestAchievableEpsilon(S, 9, Alpha);
  EXPECT_GT(E3, 0.0);
  EXPECT_GT(E9, E3);
  // Still achievable: a long enough production interval amortizes any
  // finite space at these drift rates.
  EXPECT_LT(E9, 1.0);
}

TEST(TheoryTest, RequiredProductionIntervalGrowsWithSpaceSize) {
  // Figure 3's S = 1 s cannot amortize nine versions at eps = 0.5 (the
  // region is already empty at S.N ~= 8); compare at a sampling interval
  // both spaces can afford.
  AnalysisParams Three = AnalysisParams::figure3Example();
  Three.S = 0.2;
  Three.N = 3;
  AnalysisParams Nine = Three;
  Nine.N = 9;
  const auto P3 = requiredProductionInterval(Three);
  const auto P9 = requiredProductionInterval(Nine);
  ASSERT_TRUE(P3.has_value());
  ASSERT_TRUE(P9.has_value());
  EXPECT_GT(*P9, *P3);
  // Consistency with the feasible region: the required interval is its
  // lower edge.
  const auto R9 = feasibleRegion(Nine);
  ASSERT_TRUE(R9.has_value());
  EXPECT_NEAR(*P9, R9->first, 1e-9);
  // A tight bound with a large space becomes infeasible outright.
  AnalysisParams Impossible = Nine;
  Impossible.Epsilon = 0.05;
  EXPECT_FALSE(requiredProductionInterval(Impossible).has_value());
}

TEST(TheoryTest, OptimalPMatchesPaperExample) {
  // "For the example values used in Figure 3, the optimal value of P is
  // P_opt ~= 7.25."
  const double POpt = optimalProductionInterval(1.0, 2, 0.065);
  EXPECT_NEAR(POpt, 7.25, 0.05);
}

TEST(TheoryTest, OptimalPSatisfiesEquation9) {
  Rng R(23);
  for (int I = 0; I < 10; ++I) {
    const double S = R.uniform(0.1, 5.0);
    const unsigned N = 2 + static_cast<unsigned>(R.nextBelow(4));
    const double Alpha = R.uniform(0.01, 0.3);
    const double P = optimalProductionInterval(S, N, Alpha);
    const double Residual =
        std::exp(-Alpha * P) * (P + S * N + 1.0 / Alpha) - 1.0 / Alpha;
    EXPECT_NEAR(Residual, 0.0, 1e-6);
  }
}

TEST(TheoryTest, OptimalPMinimizesPerUnitDifference) {
  const double S = 1.0, Alpha = 0.065;
  const unsigned N = 2;
  const double POpt = optimalProductionInterval(S, N, Alpha);
  const double AtOpt = differencePerUnitTime(POpt, S, N, Alpha);
  for (double Delta : {-2.0, -0.5, 0.5, 2.0, 10.0}) {
    if (POpt + Delta > 0) {
      EXPECT_LE(AtOpt, differencePerUnitTime(POpt + Delta, S, N, Alpha));
    }
  }
}

TEST(TheoryTest, WorkDifferenceNonNegativeAndGrowsWithSampling) {
  // The optimal algorithm never does less work than worst-case dynamic
  // feedback, and more sampling cost widens the gap.
  for (double P : {1.0, 5.0, 20.0}) {
    EXPECT_GE(workDifference(P, 1.0, 2, 0.065), 0.0);
    EXPECT_LT(workDifference(P, 1.0, 2, 0.065),
              workDifference(P, 2.0, 2, 0.065));
    EXPECT_LT(workDifference(P, 1.0, 2, 0.065),
              workDifference(P, 1.0, 3, 0.065));
  }
}

// ---------------------- Partial-sampling extension --------------------------

TEST(TheoryTest, PartialWorkDifferenceReducesToEquation6) {
  // At delta = 0 the partial-sampling bound is Eq. 6 with k in place of N;
  // any positive selection error strictly widens the gap.
  const double S = 1.0, Alpha = 0.065;
  for (double P : {1.0, 5.0, 20.0})
    for (unsigned K : {1u, 3u, 9u}) {
      EXPECT_NEAR(workDifferencePartial(P, S, K, 0.0, Alpha),
                  workDifference(P, S, K, Alpha), 1e-12);
      EXPECT_GT(workDifferencePartial(P, S, K, 0.2, Alpha),
                workDifference(P, S, K, Alpha));
      EXPECT_LT(workDifferencePartial(P, S, K, 0.2, Alpha),
                workDifferencePartial(P, S, K, 0.4, Alpha));
    }
}

TEST(TheoryTest, PartialEpsilonMatchesExhaustiveAtZeroErrorFullCoverage) {
  const double S = 1.0, Alpha = 0.065;
  for (unsigned N : {2u, 9u, 15u})
    EXPECT_NEAR(bestAchievableEpsilonPartial(S, N, 0.0, Alpha),
                bestAchievableEpsilon(S, N, Alpha), 1e-9);
}

TEST(TheoryTest, PartialEpsilonMonotoneInCoverageAndError) {
  // Fewer sampled versions tighten the bound (less sampling cost); a
  // larger selection error loosens it.
  const double S = 1.0, Alpha = 0.065;
  EXPECT_LT(bestAchievableEpsilonPartial(S, 5, 0.05, Alpha),
            bestAchievableEpsilonPartial(S, 15, 0.05, Alpha));
  EXPECT_LT(bestAchievableEpsilonPartial(S, 5, 0.05, Alpha),
            bestAchievableEpsilonPartial(S, 5, 0.2, Alpha));
  // The stationary point is a genuine minimum of the per-unit-time bound.
  const double Eps = bestAchievableEpsilonPartial(S, 5, 0.1, Alpha);
  for (double P : {1.0, 5.0, 20.0, 80.0})
    EXPECT_LE(Eps, differencePerUnitTimePartial(P, S, 5, 0.1, Alpha) + 1e-9);
}

TEST(TheoryTest, BreakEvenSelectionErrorBoundsTheTrade) {
  // Sampling 5 of 15 versions buys a strictly positive error budget; at
  // exactly the break-even delta the partial bound meets the exhaustive
  // one, and K >= N buys nothing.
  const double S = 1.0, Alpha = 0.065;
  const double Delta = breakEvenSelectionError(S, 5, 15, Alpha);
  EXPECT_GT(Delta, 0.0);
  EXPECT_LT(Delta, 1.0);
  EXPECT_NEAR(bestAchievableEpsilonPartial(S, 5, Delta, Alpha),
              bestAchievableEpsilon(S, 15, Alpha), 1e-6);
  EXPECT_EQ(breakEvenSelectionError(S, 15, 15, Alpha), 0.0);
  EXPECT_EQ(breakEvenSelectionError(S, 20, 15, Alpha), 0.0);
  // A deeper cut (fewer sampled versions) affords a larger error.
  EXPECT_GT(breakEvenSelectionError(S, 3, 15, Alpha),
            breakEvenSelectionError(S, 10, 15, Alpha));
}

} // namespace
