//===- tests/SweepTest.cpp - Parameterized sweeps and sensitivity ----------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/Harness.h"
#include "apps/barnes_hut/BarnesHutApp.h"
#include "apps/water/WaterApp.h"
#include "ir/Builder.h"
#include "sim/SectionSim.h"
#include "sim/Trace.h"

#include <gtest/gtest.h>
#include <limits>

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::ir;
using namespace dynfb::rt;
using namespace dynfb::xform;

namespace {

bh::BarnesHutApp &bhApp() {
  static bh::BarnesHutApp *App = [] {
    bh::BarnesHutConfig Config;
    Config.scale(1024.0 / 16384.0);
    return new bh::BarnesHutApp(Config);
  }();
  return *App;
}

water::WaterApp &waterApp() {
  static water::WaterApp *App =
      new water::WaterApp(water::WaterConfig{});
  return *App;
}

// ---------------- Per-policy scaling monotonicity (TEST_P) -----------------

class PolicyScalingTest : public ::testing::TestWithParam<PolicyKind> {};

TEST_P(PolicyScalingTest, BarnesHutTimeDecreasesWithProcessors) {
  const PolicyKind P = GetParam();
  double Prev = std::numeric_limits<double>::infinity();
  for (unsigned Procs : {1u, 2u, 4u, 8u, 16u}) {
    const double T = runAppSeconds(bhApp(), Procs, Flavour::Fixed, P);
    EXPECT_LT(T, Prev) << policyName(P) << " at " << Procs << " procs";
    Prev = T;
  }
}

TEST_P(PolicyScalingTest, BarnesHutSpeedupBoundedByProcessorCount) {
  const PolicyKind P = GetParam();
  const double T1 = runAppSeconds(bhApp(), 1, Flavour::Fixed, P);
  for (unsigned Procs : {2u, 8u, 16u}) {
    const double TP = runAppSeconds(bhApp(), Procs, Flavour::Fixed, P);
    EXPECT_LE(T1 / TP, static_cast<double>(Procs) * 1.001)
        << policyName(P);
  }
}

INSTANTIATE_TEST_SUITE_P(AllPoliciesSweep, PolicyScalingTest,
                         ::testing::Values(PolicyKind::Original,
                                           PolicyKind::Bounded,
                                           PolicyKind::Aggressive),
                         [](const auto &Info) {
                           return std::string(policyName(Info.param));
                         });

// ---------------- Water policy crossover (TEST_P over procs) ---------------

class WaterCrossoverTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(WaterCrossoverTest, BoundedBeatsAggressiveBeyondOneProcessor) {
  const unsigned Procs = GetParam();
  const double Bnd =
      runAppSeconds(waterApp(), Procs, Flavour::Fixed, PolicyKind::Bounded);
  const double Agg = runAppSeconds(waterApp(), Procs, Flavour::Fixed,
                                   PolicyKind::Aggressive);
  if (Procs == 1)
    EXPECT_LT(Agg, Bnd); // Least locking wins serially.
  else
    EXPECT_LT(Bnd, Agg); // False exclusion dominates in parallel.
}

INSTANTIATE_TEST_SUITE_P(ProcCounts, WaterCrossoverTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

// ---------------- Cost-model sensitivity ------------------------------------

TEST(CostSensitivityTest, LockCostHurtsLockHeavyPoliciesMore) {
  CostModel Cheap = CostModel::dashLike();
  CostModel Expensive = Cheap;
  Expensive.AcquireNanos *= 4;
  Expensive.ReleaseNanos *= 4;

  auto Run = [&](PolicyKind P, const CostModel &CM) {
    return nanosToSeconds(
        runApp(bhApp(), 1, Flavour::Fixed, P, {}, nullptr, CM).TotalNanos);
  };
  const double OrigDelta = Run(PolicyKind::Original, Expensive) -
                           Run(PolicyKind::Original, Cheap);
  const double AggDelta = Run(PolicyKind::Aggressive, Expensive) -
                          Run(PolicyKind::Aggressive, Cheap);
  EXPECT_GT(OrigDelta, 100.0 * AggDelta)
      << "Original executes orders of magnitude more lock pairs";
}

TEST(CostSensitivityTest, TimerCostScalesWithIterations) {
  CostModel Slow = CostModel::dashLike();
  Slow.TimerReadNanos += 100000; // +100 us per poll.
  const double Base = nanosToSeconds(
      runApp(bhApp(), 1, Flavour::Fixed, PolicyKind::Aggressive, {},
             nullptr, CostModel::dashLike())
          .TotalNanos);
  const double WithSlowTimer = nanosToSeconds(
      runApp(bhApp(), 1, Flavour::Fixed, PolicyKind::Aggressive, {},
             nullptr, Slow)
          .TotalNanos);
  // Two FORCES executions x one poll per iteration.
  const double Expected =
      2.0 * static_cast<double>(bhApp().bodies().size()) * 100e-6;
  EXPECT_NEAR(WithSlowTimer - Base, Expected, Expected * 0.05);
}

// ---------------- FIFO grant fairness ---------------------------------------

TEST(FifoFairnessTest, BlockedProcessorsAreGrantedInArrivalOrder) {
  // All iterations fight over one lock; processors block in id order at
  // t=0 and must be granted in that order, so waiting times are strictly
  // increasing in processor id for the first round.
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("work", C);
  {
    MethodBuilder B(M, Entry);
    B.acquire(Receiver::thisObj());
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
    B.release(Receiver::thisObj());
  }

  class OneLockBinding final : public DataBinding {
  public:
    uint64_t iterationCount() const override { return 4; }
    uint32_t objectCount() const override { return 1; }
    ObjectId thisObject(uint64_t) const override { return 0; }
    std::vector<ObjRef> sectionArgs(uint64_t) const override { return {}; }
    ObjectId elementOf(ArrayId, uint64_t, const LoopCtx &) const override {
      return 0;
    }
    uint64_t tripCount(unsigned, const LoopCtx &) const override {
      return 1;
    }
    Nanos computeNanos(unsigned, const LoopCtx &) const override {
      return 0;
    }
  } B;

  sim::SimMachine Machine(4, CostModel::dashLike());
  sim::SimSectionRunner Runner(Machine, B,
                               {sim::SimVersion{"v", Entry}}, false);
  sim::IntervalTrace Trace;
  Runner.attachTrace(&Trace);
  Runner.runInterval(0, std::numeric_limits<Nanos>::max() / 4);

  // Proc 0 acquired immediately (no wait); procs 1..3 waited strictly
  // longer each (FIFO behind each other).
  ASSERT_EQ(Trace.Procs.size(), 4u);
  EXPECT_EQ(Trace.Procs[0].WaitNanos, 0);
  EXPECT_GT(Trace.Procs[1].WaitNanos, 0);
  EXPECT_GT(Trace.Procs[2].WaitNanos, Trace.Procs[1].WaitNanos);
  EXPECT_GT(Trace.Procs[3].WaitNanos, Trace.Procs[2].WaitNanos);
}

// ---------------- Dynamic never much worse than best static -----------------

class DynamicRobustnessTest : public ::testing::TestWithParam<unsigned> {};

TEST_P(DynamicRobustnessTest, WithinTenPercentOfBestStatic) {
  const unsigned Procs = GetParam();
  double Best = std::numeric_limits<double>::infinity();
  for (PolicyKind P : AllPolicies)
    Best = std::min(Best,
                    runAppSeconds(waterApp(), Procs, Flavour::Fixed, P));
  const double Dyn = runAppSeconds(waterApp(), Procs, Flavour::Dynamic);
  EXPECT_LT(Dyn, 1.10 * Best) << Procs << " procs";
}

INSTANTIATE_TEST_SUITE_P(ProcCounts, DynamicRobustnessTest,
                         ::testing::Values(1u, 2u, 4u, 8u, 16u));

} // namespace
