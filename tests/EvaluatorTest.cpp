//===- tests/EvaluatorTest.cpp - Semantic equivalence of generated code ----==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Functional verification: every generated version of a section computes
// the same final object state, under any iteration order -- the semantic
// guarantee behind the whole multi-versioning approach. Also demonstrates
// that commutativity is load-bearing: a non-commuting program's result
// depends on the order.
//
//===----------------------------------------------------------------------===//

#include "apps/barnes_hut/BarnesHutApp.h"
#include "apps/string_tomo/StringApp.h"
#include "apps/water/WaterApp.h"
#include "ir/Builder.h"
#include "rt/Evaluator.h"
#include "support/Random.h"

#include <algorithm>
#include <gtest/gtest.h>
#include <numeric>

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::ir;
using namespace dynfb::rt;
using namespace dynfb::xform;

namespace {

std::vector<uint64_t> identityOrder(uint64_t N) {
  std::vector<uint64_t> Order(N);
  std::iota(Order.begin(), Order.end(), 0);
  return Order;
}

std::vector<uint64_t> shuffledOrder(uint64_t N, uint64_t Seed) {
  std::vector<uint64_t> Order = identityOrder(N);
  Rng R(Seed);
  for (size_t I = Order.size(); I > 1; --I)
    std::swap(Order[I - 1], Order[R.nextBelow(I)]);
  return Order;
}

/// Runs every version of \p Section in \p App and checks all final stores
/// are identical, in natural and shuffled orders.
void checkAppSection(const App &App, const char *Section) {
  const VersionedSection *VS = App.program().find(Section);
  ASSERT_NE(VS, nullptr);
  const DataBinding &B = App.binding(Section);
  const uint64_t N = B.iterationCount();

  // Reference: the serial entry, natural order.
  SectionEvaluator Serial(VS->SerialEntry, B);
  ObjectStore Reference;
  Serial.runAll(identityOrder(N), Reference);

  for (const SectionVersion &V : VS->Versions) {
    SectionEvaluator E(V.Entry, B);
    ObjectStore NaturalStore, ShuffledStore;
    E.runAll(identityOrder(N), NaturalStore);
    E.runAll(shuffledOrder(N, 42), ShuffledStore);
    EXPECT_TRUE(NaturalStore == Reference)
        << Section << " version " << V.label()
        << " diverges from serial semantics";
    EXPECT_TRUE(ShuffledStore == Reference)
        << Section << " version " << V.label()
        << " is order-dependent despite commuting operations";
  }
}

TEST(EvaluatorTest, BarnesHutVersionsAreSemanticallyEquivalent) {
  bh::BarnesHutConfig Config;
  Config.NumBodies = 48;
  bh::BarnesHutApp App(Config);
  checkAppSection(App, "FORCES");
}

TEST(EvaluatorTest, WaterVersionsAreSemanticallyEquivalent) {
  water::WaterConfig Config;
  Config.NumMolecules = 16;
  water::WaterApp App(Config);
  checkAppSection(App, "INTERF");
  checkAppSection(App, "POTENG");
}

TEST(EvaluatorTest, StringVersionsAreSemanticallyEquivalent) {
  string_tomo::StringConfig Config;
  Config.NumRays = 24;
  string_tomo::StringApp App(Config);
  checkAppSection(App, "TRACE");
}

TEST(EvaluatorTest, ApplyBinOpSemantics) {
  EXPECT_EQ(applyBinOp(BinOp::Add, 10, 3), 13u);
  EXPECT_EQ(applyBinOp(BinOp::Sub, 10, 3), 7u);
  EXPECT_EQ(applyBinOp(BinOp::Mul, 10, 3), 30u);
  EXPECT_EQ(applyBinOp(BinOp::Div, 10, 3), 3u);
  EXPECT_EQ(applyBinOp(BinOp::Div, 10, 0), 10u); // Guarded.
  EXPECT_EQ(applyBinOp(BinOp::Min, 10, 3), 3u);
  EXPECT_EQ(applyBinOp(BinOp::Max, 10, 3), 10u);
  EXPECT_EQ(applyBinOp(BinOp::Assign, 10, 3), 3u);
  // Wrap-around addition commutes exactly.
  const uint64_t Big = ~0ULL - 5;
  EXPECT_EQ(applyBinOp(BinOp::Add, Big, 10),
            applyBinOp(BinOp::Add, 10, Big));
}

TEST(EvaluatorTest, StoreDigestAndEquality) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  C->addField("f");
  ObjectStore A, B;
  EXPECT_TRUE(A == B);
  A.write(C, 1, 0, 42);
  EXPECT_FALSE(A == B);
  B.write(C, 1, 0, 42);
  EXPECT_TRUE(A == B);
  EXPECT_EQ(A.digest(), B.digest());
  // Unwritten fields read a deterministic nonzero initial value.
  EXPECT_NE(A.read(C, 7, 0), 0u);
  EXPECT_EQ(A.read(C, 7, 0), B.read(C, 7, 0));
}

TEST(EvaluatorTest, NonCommutingProgramIsOrderDependent) {
  // f = f - g(iter): subtraction does not commute... actually it does for
  // the final value of f; use Assign, which truly depends on order.
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("entry", C);
  {
    MethodBuilder B(M, Entry);
    // shared->f = iter_hash (overwrite): last writer wins.
    B.update(Receiver::thisObj(), F, BinOp::Assign,
             M.exprExternCall("h", {M.exprParamRead(0)}));
  }
  Entry->addParam(Param{"x", nullptr, false}); // Scalar param read by h.

  class SharedBinding final : public DataBinding {
  public:
    uint64_t iterationCount() const override { return 8; }
    uint32_t objectCount() const override { return 1; }
    ObjectId thisObject(uint64_t) const override { return 0; }
    std::vector<ObjRef> sectionArgs(uint64_t) const override { return {}; }
    ObjectId elementOf(ArrayId, uint64_t, const LoopCtx &) const override {
      return 0;
    }
    uint64_t tripCount(unsigned, const LoopCtx &) const override {
      return 1;
    }
    Nanos computeNanos(unsigned, const LoopCtx &) const override {
      return 1;
    }
  } B;

  SectionEvaluator E(Entry, B);
  ObjectStore Forward, Backward;
  auto Order = identityOrder(8);
  E.runAll(Order, Forward);
  std::reverse(Order.begin(), Order.end());
  E.runAll(Order, Backward);
  EXPECT_FALSE(Forward == Backward)
      << "an overwriting (non-commuting) section must be order-dependent "
         "-- this is why commutativity analysis gates parallelization";
}

} // namespace
