//===- tests/XformTest.cpp - Unit tests for the synchronization optimizer -==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/barnes_hut/BarnesHutApp.h"
#include "apps/string_tomo/StringApp.h"
#include "apps/water/WaterApp.h"
#include "ir/Builder.h"
#include "ir/Clone.h"
#include "ir/Printer.h"
#include "ir/StructuralHash.h"
#include "ir/Verifier.h"
#include "rt/Interp.h"
#include "xform/CodeSize.h"
#include "xform/LockElimination.h"
#include "xform/MultiVersion.h"
#include "xform/Synchronizer.h"

#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::xform;

namespace {

/// Counts acquire statements in a method closure.
unsigned countAcquires(const Method &M) {
  unsigned Count = 0;
  std::vector<const std::vector<Stmt *> *> Lists{&M.body()};
  std::vector<const Method *> Methods;
  while (!Lists.empty()) {
    const auto *List = Lists.back();
    Lists.pop_back();
    for (const Stmt *S : *List) {
      if (S->kind() == StmtKind::Acquire)
        ++Count;
      else if (const auto *L = stmtDynCast<LoopStmt>(S))
        Lists.push_back(&L->Body);
      else if (const auto *C = stmtDynCast<CallStmt>(S))
        Count += countAcquires(*C->callee());
    }
  }
  return Count;
}

/// Builds the paper's Figure 1 program and returns the module + entry.
struct Fig1Program {
  Module M{"fig1"};
  Method *Interactions = nullptr;
  Method *OneInteraction = nullptr;

  Fig1Program() {
    ClassDecl *Body = M.createClass("body");
    const unsigned Pos = Body->addField("pos");
    const unsigned Sum = Body->addField("sum");
    OneInteraction = M.createMethod("one_interaction", Body);
    OneInteraction->addParam(Param{"b", Body, false});
    {
      MethodBuilder B(M, OneInteraction);
      const Expr *ThisPos = M.exprFieldRead(Receiver::thisObj(), Pos);
      const Expr *OtherPos = M.exprFieldRead(Receiver::param(0), Pos);
      B.compute({ThisPos, OtherPos});
      B.update(Receiver::thisObj(), Sum, BinOp::Add,
               M.exprExternCall("interact", {ThisPos, OtherPos}));
    }
    Interactions = M.createMethod("interactions", Body);
    Interactions->addParam(Param{"b", Body, true});
    {
      MethodBuilder B(M, Interactions);
      const unsigned L = B.beginLoop();
      B.call(OneInteraction, Receiver::thisObj(),
             {Receiver::paramIndexed(0, L)});
      B.endLoop();
    }
    M.addSection("FORCES", Interactions);
  }

  /// Clones the entry, applies default placement, then the policy.
  Method *generate(PolicyKind P) {
    CloneResult CR = cloneMethodClosure(M, Interactions, policySuffix(P));
    insertDefaultPlacement(M, CR.Root);
    optimizeSynchronization(M, CR.Root, P);
    return CR.Root;
  }
};

// ------------------------ Default placement -------------------------------

TEST(SynchronizerTest, DefaultPlacementWrapsEveryUpdate) {
  Fig1Program P;
  CloneResult CR = cloneMethodClosure(P.M, P.Interactions, "$t");
  insertDefaultPlacement(P.M, CR.Root);
  // one_interaction clone: compute, acquire, update, release.
  Method *Callee = CR.Map.at(P.OneInteraction);
  ASSERT_EQ(Callee->body().size(), 4u);
  EXPECT_EQ(Callee->body()[1]->kind(), StmtKind::Acquire);
  EXPECT_EQ(Callee->body()[2]->kind(), StmtKind::Update);
  EXPECT_EQ(Callee->body()[3]->kind(), StmtKind::Release);
  EXPECT_TRUE(verifyAtomicity(*CR.Root).empty());
}

TEST(SynchronizerTest, StripRemovesAllLocks) {
  Fig1Program P;
  CloneResult CR = cloneMethodClosure(P.M, P.Interactions, "$t");
  insertDefaultPlacement(P.M, CR.Root);
  stripAllLocks(CR.Root);
  EXPECT_EQ(countAcquires(*CR.Root), 0u);
}

// ------------------------ The Figure 1 -> 2 lift ---------------------------

TEST(LockEliminationTest, OriginalKeepsDefaultPlacement) {
  Fig1Program P;
  Method *V = P.generate(PolicyKind::Original);
  // The acquire stays inside the callee, executed once per loop iteration.
  const auto *L = stmtDynCast<LoopStmt>(V->body()[0]);
  ASSERT_NE(L, nullptr);
  const auto *Call = stmtDynCast<CallStmt>(L->Body[0]);
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(countAcquires(*Call->callee()), 1u);
  EXPECT_TRUE(verifyAtomicity(*V).empty());
}

TEST(LockEliminationTest, AggressiveLiftsLockOutOfLoopInterprocedurally) {
  Fig1Program P;
  Method *V = P.generate(PolicyKind::Aggressive);
  // Expected Figure 2 shape: acquire(this); loop { call nolock }; release.
  ASSERT_EQ(V->body().size(), 3u);
  const auto *Acq = stmtDynCast<AcquireStmt>(V->body()[0]);
  ASSERT_NE(Acq, nullptr);
  EXPECT_EQ(Acq->Recv, Receiver::thisObj());
  const auto *L = stmtDynCast<LoopStmt>(V->body()[1]);
  ASSERT_NE(L, nullptr);
  EXPECT_EQ(V->body()[2]->kind(), StmtKind::Release);
  // The loop calls a lock-free variant.
  const auto *Call = stmtDynCast<CallStmt>(L->Body[0]);
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(countAcquires(*Call->callee()), 0u);
  EXPECT_TRUE(verifyAtomicity(*V).empty());
}

TEST(LockEliminationTest, BoundedRefusesLoopLift) {
  Fig1Program P;
  Method *V = P.generate(PolicyKind::Bounded);
  // With a single update per interaction there is nothing to coalesce, so
  // Bounded equals Original here.
  Method *O = P.generate(PolicyKind::Original);
  EXPECT_TRUE(structurallyEqual(*V, *O));
}

TEST(LockEliminationTest, CoalescingMergesAdjacentRegions) {
  // Two updates on `this`: default placement makes two regions; coalescing
  // merges them into one.
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  const unsigned G = C->addField("g");
  Method *Entry = M.createMethod("entry", C);
  {
    MethodBuilder B(M, Entry);
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
    B.update(Receiver::thisObj(), G, BinOp::Add, M.exprConst(2.0));
  }
  M.addSection("S", Entry);
  CloneResult CR = cloneMethodClosure(M, Entry, "$b");
  insertDefaultPlacement(M, CR.Root);
  const OptStats Stats =
      optimizeSynchronization(M, CR.Root, PolicyKind::Bounded);
  EXPECT_EQ(Stats.RegionsCoalesced, 1u);
  EXPECT_EQ(countAcquires(*CR.Root), 1u);
  EXPECT_TRUE(verifyAtomicity(*CR.Root).empty());
}

TEST(LockEliminationTest, CoalescingAbsorbsInterveningCompute) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("entry", C);
  {
    MethodBuilder B(M, Entry);
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
    B.compute();
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(2.0));
  }
  CloneResult CR = cloneMethodClosure(M, Entry, "$b");
  insertDefaultPlacement(M, CR.Root);
  optimizeSynchronization(M, CR.Root, PolicyKind::Bounded);
  EXPECT_EQ(countAcquires(*CR.Root), 1u);
}

TEST(LockEliminationTest, NoCoalesceAcrossDifferentReceivers) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("entry", C);
  Entry->addParam(Param{"p", C, false});
  {
    MethodBuilder B(M, Entry);
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
    B.update(Receiver::param(0), F, BinOp::Add, M.exprConst(2.0));
  }
  CloneResult CR = cloneMethodClosure(M, Entry, "$b");
  insertDefaultPlacement(M, CR.Root);
  const OptStats Stats =
      optimizeSynchronization(M, CR.Root, PolicyKind::Bounded);
  EXPECT_EQ(Stats.RegionsCoalesced, 0u);
  EXPECT_EQ(countAcquires(*CR.Root), 2u);
}

TEST(LockEliminationTest, NoLiftWhenReceiverVariesWithLoop) {
  // Updates of m[i] inside the loop: the region receiver is loop-variant,
  // so even Aggressive cannot lift.
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("entry", C);
  Entry->addParam(Param{"m", C, true});
  {
    MethodBuilder B(M, Entry);
    const unsigned L = B.beginLoop();
    B.update(Receiver::paramIndexed(0, L), F, BinOp::Add, M.exprConst(1.0));
    B.endLoop();
  }
  CloneResult CR = cloneMethodClosure(M, Entry, "$a");
  insertDefaultPlacement(M, CR.Root);
  const OptStats Stats =
      optimizeSynchronization(M, CR.Root, PolicyKind::Aggressive);
  EXPECT_EQ(Stats.LoopsLifted, 0u);
}

TEST(LockEliminationTest, NestedLoopsLiftToFixpoint) {
  // POTENG shape: for { for { compute }; g->e += ... } lifts twice under
  // Aggressive, serializing on the global accumulator.
  Module M("m");
  ClassDecl *C = M.createClass("c");
  ClassDecl *A = M.createClass("accum");
  const unsigned E = A->addField("e");
  (void)C->addField("pos");
  Method *Entry = M.createMethod("entry", C);
  Entry->addParam(Param{"g", A, false});
  {
    MethodBuilder B(M, Entry);
    B.beginLoop();
    B.beginLoop();
    B.compute();
    B.endLoop();
    B.update(Receiver::param(0), E, BinOp::Add, M.exprConst(1.0));
    B.endLoop();
  }
  CloneResult CR = cloneMethodClosure(M, Entry, "$a");
  insertDefaultPlacement(M, CR.Root);
  const OptStats Stats =
      optimizeSynchronization(M, CR.Root, PolicyKind::Aggressive);
  EXPECT_EQ(Stats.LoopsLifted, 1u);
  // Final shape: acquire(g); loop { loop { compute }; update }; release(g).
  ASSERT_EQ(CR.Root->body().size(), 3u);
  EXPECT_EQ(CR.Root->body()[0]->kind(), StmtKind::Acquire);
  EXPECT_EQ(CR.Root->body()[1]->kind(), StmtKind::Loop);
  EXPECT_EQ(CR.Root->body()[2]->kind(), StmtKind::Release);
  EXPECT_TRUE(verifyAtomicity(*CR.Root).empty());
}

// ------------------------ Multi-version generation ------------------------

TEST(MultiVersionTest, BarnesHutHasThreeDistinctVersions) {
  apps::bh::BarnesHutConfig Config;
  Config.NumBodies = 64;
  apps::bh::BarnesHutApp App(Config);
  const VersionedSection *VS = App.program().find("FORCES");
  ASSERT_NE(VS, nullptr);
  EXPECT_EQ(VS->Versions.size(), 3u);
  EXPECT_EQ(VS->versionFor(PolicyKind::Original).label(), "Original");
  EXPECT_EQ(VS->versionFor(PolicyKind::Bounded).label(), "Bounded");
  EXPECT_EQ(VS->versionFor(PolicyKind::Aggressive).label(), "Aggressive");
}

TEST(MultiVersionTest, WaterInterfMergesBoundedAndAggressive) {
  apps::water::WaterConfig Config;
  Config.NumMolecules = 16;
  apps::water::WaterApp App(Config);
  const VersionedSection *VS = App.program().find("INTERF");
  ASSERT_NE(VS, nullptr);
  // The paper: "For the INTERF section, the generated code would be the
  // same for the Bounded and Aggressive policies."
  ASSERT_EQ(VS->Versions.size(), 2u);
  EXPECT_EQ(VS->versionFor(PolicyKind::Bounded).Entry,
            VS->versionFor(PolicyKind::Aggressive).Entry);
  EXPECT_NE(VS->versionFor(PolicyKind::Original).Entry,
            VS->versionFor(PolicyKind::Bounded).Entry);
  EXPECT_EQ(VS->versionFor(PolicyKind::Bounded).label(),
            "Bounded/Aggressive");
}

TEST(MultiVersionTest, WaterPotengMergesOriginalAndBounded) {
  apps::water::WaterConfig Config;
  Config.NumMolecules = 16;
  apps::water::WaterApp App(Config);
  const VersionedSection *VS = App.program().find("POTENG");
  ASSERT_NE(VS, nullptr);
  // The paper: for POTENG the code is the same for Original and Bounded.
  ASSERT_EQ(VS->Versions.size(), 2u);
  EXPECT_EQ(VS->versionFor(PolicyKind::Original).Entry,
            VS->versionFor(PolicyKind::Bounded).Entry);
  EXPECT_NE(VS->versionFor(PolicyKind::Aggressive).Entry,
            VS->versionFor(PolicyKind::Original).Entry);
}

TEST(MultiVersionTest, StringHasThreeDistinctVersions) {
  apps::string_tomo::StringConfig Config;
  Config.NumRays = 16;
  apps::string_tomo::StringApp App(Config);
  const VersionedSection *VS = App.program().find("TRACE");
  ASSERT_NE(VS, nullptr);
  EXPECT_EQ(VS->Versions.size(), 3u);
}

TEST(MultiVersionTest, SerialEntriesAreLockFree) {
  apps::bh::BarnesHutConfig Config;
  Config.NumBodies = 64;
  apps::bh::BarnesHutApp App(Config);
  const VersionedSection *VS = App.program().find("FORCES");
  ASSERT_NE(VS, nullptr);
  EXPECT_EQ(countAcquires(*VS->SerialEntry), 0u);
}

// ------------------------ Lock pair counting ------------------------------

/// Counts acquire/release pairs one iteration executes, per policy, via the
/// interpreter -- the quantities behind the paper's Tables 3 and 8.
TEST(MultiVersionTest, BarnesHutPairCountsPerPolicy) {
  apps::bh::BarnesHutConfig Config;
  Config.NumBodies = 64;
  apps::bh::BarnesHutApp App(Config);
  const VersionedSection *VS = App.program().find("FORCES");
  const rt::DataBinding &B = App.binding("FORCES");
  const rt::CostModel CM = rt::CostModel::dashLike();

  rt::IterationEmitter Orig(VS->versionFor(PolicyKind::Original).Entry, B,
                            CM);
  rt::IterationEmitter Bnd(VS->versionFor(PolicyKind::Bounded).Entry, B, CM);
  rt::IterationEmitter Agg(VS->versionFor(PolicyKind::Aggressive).Entry, B,
                           CM);

  const uint64_t Interactions = App.interactionCounts()[0];
  ASSERT_GT(Interactions, 0u);
  // Original: one pair per update (two updates per interaction).
  EXPECT_EQ(Orig.countPairs(0), 2 * Interactions);
  // Bounded: the two updates coalesce into one region per interaction.
  EXPECT_EQ(Bnd.countPairs(0), Interactions);
  // Aggressive: one pair for the whole iteration.
  EXPECT_EQ(Agg.countPairs(0), 1u);
  // All versions perform the same useful compute.
  EXPECT_EQ(Orig.computeTime(0), Bnd.computeTime(0));
  EXPECT_EQ(Orig.computeTime(0), Agg.computeTime(0));
}

TEST(MultiVersionTest, WaterPairCountsPerPolicy) {
  apps::water::WaterConfig Config;
  Config.NumMolecules = 16;
  apps::water::WaterApp App(Config);
  const rt::CostModel CM = rt::CostModel::dashLike();
  // Iteration 0's pair count comes from the real neighbor list.
  const uint64_t Partners = App.system().Neighbors[0].size();
  ASSERT_GT(Partners, 0u);

  {
    const VersionedSection *VS = App.program().find("INTERF");
    const rt::DataBinding &B = App.binding("INTERF");
    rt::IterationEmitter Orig(VS->versionFor(PolicyKind::Original).Entry, B,
                              CM);
    rt::IterationEmitter Bnd(VS->versionFor(PolicyKind::Bounded).Entry, B,
                             CM);
    // Nine atom-pair updates per molecule of the pair; Bounded coalesces
    // each side's run into one region.
    EXPECT_EQ(Orig.countPairs(0), 18 * Partners);
    EXPECT_EQ(Bnd.countPairs(0), 2 * Partners);
  }
  {
    const VersionedSection *VS = App.program().find("POTENG");
    const rt::DataBinding &B = App.binding("POTENG");
    rt::IterationEmitter Orig(VS->versionFor(PolicyKind::Original).Entry, B,
                              CM);
    rt::IterationEmitter Agg(VS->versionFor(PolicyKind::Aggressive).Entry, B,
                             CM);
    EXPECT_EQ(Orig.countPairs(0), Partners);
    EXPECT_EQ(Agg.countPairs(0), 1u);
  }
}

TEST(MultiVersionTest, StringPairCountsPerPolicy) {
  apps::string_tomo::StringConfig Config;
  Config.NumRays = 16;
  apps::string_tomo::StringApp App(Config);
  const VersionedSection *VS = App.program().find("TRACE");
  const rt::DataBinding &B = App.binding("TRACE");
  const rt::CostModel CM = rt::CostModel::dashLike();
  const uint64_t Segments = App.rays()[0].Segments;

  rt::IterationEmitter Orig(VS->versionFor(PolicyKind::Original).Entry, B,
                            CM);
  rt::IterationEmitter Bnd(VS->versionFor(PolicyKind::Bounded).Entry, B, CM);
  rt::IterationEmitter Agg(VS->versionFor(PolicyKind::Aggressive).Entry, B,
                           CM);
  EXPECT_EQ(Orig.countPairs(0), 2 * Segments);
  EXPECT_EQ(Bnd.countPairs(0), Segments);
  EXPECT_EQ(Agg.countPairs(0), 1u);
}

// ------------------------ Code size ----------------------------------------

TEST(CodeSizeTest, DynamicIsLargestAndSharesSubgraphs) {
  apps::bh::BarnesHutConfig Config;
  Config.NumBodies = 64;
  apps::bh::BarnesHutApp App(Config);
  const CodeSizeModel Model;
  const ExecutableSizes Sizes =
      computeExecutableSizes(App.program(), Model, 24000);
  EXPECT_LT(Sizes.Serial, Sizes.Aggressive);
  EXPECT_LT(Sizes.Aggressive, Sizes.Dynamic);
  // The increase from multi-versioning stays modest (the paper's Table 1
  // shows ~5-10%), thanks to shared subgraphs.
  EXPECT_LT(static_cast<double>(Sizes.Dynamic),
            1.35 * static_cast<double>(Sizes.Aggressive));
}

} // namespace
