//===- tests/MutationTest.cpp - The verifier catches broken transforms -----==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Negative testing of the safety net: take correctly generated versions,
// apply mutations a buggy synchronization transformation could plausibly
// produce (dropped releases, dropped acquires, swapped lock order, updates
// hoisted out of their regions), and check the verifier rejects each one.
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Clone.h"
#include "ir/Verifier.h"
#include "xform/LockElimination.h"
#include "xform/Synchronizer.h"

#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::xform;

namespace {

/// A two-update program with a loop, generated under the Bounded policy:
/// body: loop { compute; acquire; U; U; release }.
struct GeneratedFixture {
  Module M{"m"};
  Method *Entry = nullptr;
  LoopStmt *Loop = nullptr;

  GeneratedFixture() {
    ClassDecl *C = M.createClass("c");
    const unsigned F = C->addField("f");
    const unsigned G = C->addField("g");
    Method *Author = M.createMethod("work", C);
    {
      MethodBuilder B(M, Author);
      B.beginLoop();
      B.compute();
      B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
      B.update(Receiver::thisObj(), G, BinOp::Add, M.exprConst(2.0));
      B.endLoop();
    }
    CloneResult CR = cloneMethodClosure(M, Author, "$v");
    insertDefaultPlacement(M, CR.Root);
    optimizeSynchronization(M, CR.Root, PolicyKind::Bounded);
    Entry = CR.Root;
    Loop = stmtDynCast<LoopStmt>(Entry->body()[0]);
    EXPECT_NE(Loop, nullptr);
  }

  /// Index of the first statement of the given kind in the loop body.
  size_t indexOf(StmtKind K) const {
    for (size_t I = 0; I < Loop->Body.size(); ++I)
      if (Loop->Body[I]->kind() == K)
        return I;
    ADD_FAILURE() << "statement kind not found";
    return 0;
  }
};

TEST(MutationTest, GeneratedCodeIsCleanBeforeMutation) {
  GeneratedFixture Fx;
  EXPECT_TRUE(verifyMethod(*Fx.Entry).empty());
  EXPECT_TRUE(verifyAtomicity(*Fx.Entry).empty());
}

TEST(MutationTest, DroppedReleaseIsCaught) {
  GeneratedFixture Fx;
  const size_t Rel = Fx.indexOf(StmtKind::Release);
  Fx.Loop->Body.erase(Fx.Loop->Body.begin() + static_cast<long>(Rel));
  EXPECT_FALSE(verifyMethod(*Fx.Entry).empty());
}

TEST(MutationTest, DroppedAcquireIsCaught) {
  GeneratedFixture Fx;
  const size_t Acq = Fx.indexOf(StmtKind::Acquire);
  Fx.Loop->Body.erase(Fx.Loop->Body.begin() + static_cast<long>(Acq));
  // Structurally ill-formed (release without acquire)...
  EXPECT_FALSE(verifyMethod(*Fx.Entry).empty());
}

TEST(MutationTest, UpdateHoistedOutOfRegionIsCaught) {
  GeneratedFixture Fx;
  const size_t Acq = Fx.indexOf(StmtKind::Acquire);
  const size_t Upd = Fx.indexOf(StmtKind::Update);
  // Move the first update before the acquire.
  Stmt *U = Fx.Loop->Body[Upd];
  Fx.Loop->Body.erase(Fx.Loop->Body.begin() + static_cast<long>(Upd));
  Fx.Loop->Body.insert(Fx.Loop->Body.begin() + static_cast<long>(Acq), U);
  // Structure (balance) is still fine...
  EXPECT_TRUE(verifyMethod(*Fx.Entry).empty());
  // ...but atomicity is violated.
  const auto Errors = verifyAtomicity(*Fx.Entry);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("atomicity violation"), std::string::npos);
}

TEST(MutationTest, RegionOnWrongReceiverIsCaught) {
  // Guard the update of `this` with some other object's lock.
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Meth = M.createMethod("m", C);
  Meth->addParam(Param{"p", C, false});
  Meth->body().push_back(M.createAcquire(Receiver::param(0)));
  Meth->body().push_back(
      M.createUpdate(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0)));
  Meth->body().push_back(M.createRelease(Receiver::param(0)));
  EXPECT_TRUE(verifyMethod(*Meth).empty());
  EXPECT_FALSE(verifyAtomicity(*Meth).empty());
}

TEST(MutationTest, SwappedReleaseOrderIsCaught) {
  // Interleaved (non-LIFO) regions: acquire a; acquire b; release a;
  // release b.
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Meth = M.createMethod("m", C);
  Meth->addParam(Param{"p", C, false});
  Meth->body().push_back(M.createAcquire(Receiver::thisObj()));
  Meth->body().push_back(M.createAcquire(Receiver::param(0)));
  Meth->body().push_back(M.createRelease(Receiver::thisObj()));
  Meth->body().push_back(M.createRelease(Receiver::param(0)));
  const auto Errors = verifyMethod(*Meth);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("LIFO"), std::string::npos);
}

TEST(MutationTest, CalleeReacquiringHeldLockIsCaught) {
  // The caller holds this's lock and calls a method that acquires it
  // again through the translated receiver: self-deadlock at run time.
  // The atomicity checker does not model deadlock, but the structural
  // verifier rejects the callee when inlined... here we check the direct
  // self-deadlock form.
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Meth = M.createMethod("m", C);
  Meth->body().push_back(M.createAcquire(Receiver::thisObj()));
  Meth->body().push_back(M.createAcquire(Receiver::thisObj()));
  Meth->body().push_back(M.createRelease(Receiver::thisObj()));
  Meth->body().push_back(M.createRelease(Receiver::thisObj()));
  const auto Errors = verifyMethod(*Meth);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("self-deadlock"), std::string::npos);
}

} // namespace
