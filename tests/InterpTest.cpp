//===- tests/InterpTest.cpp - Unit tests for IR lowering -------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "rt/Interp.h"

#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::rt;

namespace {

/// Minimal binding over a fixed object universe.
class TestBinding final : public DataBinding {
public:
  uint64_t Iterations = 4;
  uint32_t Objects = 8;
  uint64_t Trip = 3;
  Nanos ComputeCost = 1000;
  bool Cacheable = false; ///< Advertise stable per-iteration sequences.

  uint64_t iterationCount() const override { return Iterations; }
  uint32_t objectCount() const override { return Objects; }
  ObjectId thisObject(uint64_t Iter) const override {
    return static_cast<ObjectId>(Iter % Objects);
  }
  std::vector<ObjRef> sectionArgs(uint64_t) const override { return Args; }
  ObjectId elementOf(ArrayId, uint64_t Index,
                     const LoopCtx &Ctx) const override {
    ++ElementOfCalls;
    return static_cast<ObjectId>((Ctx.Iter + 1 + Index) % Objects);
  }
  uint64_t tripCount(unsigned, const LoopCtx &) const override {
    return Trip;
  }
  Nanos computeNanos(unsigned, const LoopCtx &) const override {
    return ComputeCost;
  }
  int64_t iterationClass(uint64_t Iter) const override {
    return Cacheable ? static_cast<int64_t>(Iter) : -1;
  }

  std::vector<ObjRef> Args;
  mutable uint64_t ElementOfCalls = 0;
};

bool sameOps(const std::vector<MicroOp> &A, const std::vector<MicroOp> &B) {
  if (A.size() != B.size())
    return false;
  for (size_t I = 0; I < A.size(); ++I)
    if (A[I].K != B[I].K || A[I].Obj != B[I].Obj || A[I].Dur != B[I].Dur)
      return false;
  return true;
}

TEST(InterpTest, EmitsExplicitRegionOps) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("e", C);
  {
    MethodBuilder B(M, Entry);
    B.compute();
    B.acquire(Receiver::thisObj());
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
    B.release(Receiver::thisObj());
  }

  TestBinding Binding;
  CostModel CM;
  IterationEmitter E(Entry, Binding, CM);
  std::vector<MicroOp> Ops;
  E.emit(2, Ops);
  ASSERT_EQ(Ops.size(), 4u);
  EXPECT_EQ(Ops[0].K, MicroOp::Kind::Compute);
  EXPECT_EQ(Ops[0].Dur, Binding.ComputeCost);
  EXPECT_EQ(Ops[1].K, MicroOp::Kind::Acquire);
  EXPECT_EQ(Ops[1].Obj, 2u); // thisObject(2)
  EXPECT_EQ(Ops[2].K, MicroOp::Kind::Compute);
  EXPECT_EQ(Ops[2].Dur, CM.UpdateNanos);
  EXPECT_EQ(Ops[3].K, MicroOp::Kind::Release);
}

TEST(InterpTest, MergesAdjacentComputes) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("e", C);
  {
    MethodBuilder B(M, Entry);
    B.compute();
    B.compute();
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
  }
  TestBinding Binding;
  CostModel CM;
  IterationEmitter E(Entry, Binding, CM);
  std::vector<MicroOp> Ops;
  E.emit(0, Ops);
  // Two computes + the naked update all merge into one compute op.
  ASSERT_EQ(Ops.size(), 1u);
  EXPECT_EQ(Ops[0].Dur, 2 * Binding.ComputeCost + CM.UpdateNanos);
}

TEST(InterpTest, LoopsUnrollWithTripCount) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Entry = M.createMethod("e", C);
  {
    MethodBuilder B(M, Entry);
    B.beginLoop();
    B.acquire(Receiver::thisObj());
    B.release(Receiver::thisObj());
    B.endLoop();
  }
  TestBinding Binding;
  Binding.Trip = 5;
  IterationEmitter E(Entry, Binding, CostModel{});
  EXPECT_EQ(E.countPairs(0), 5u);
}

TEST(InterpTest, ParamIndexedResolvesThroughBinding) {
  // Lock object varies with loop index: acquire(m[i]).
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("e", C);
  Entry->addParam(Param{"m", C, true});
  unsigned LoopId;
  {
    MethodBuilder B(M, Entry);
    LoopId = B.beginLoop();
    B.acquire(Receiver::paramIndexed(0, LoopId));
    B.update(Receiver::paramIndexed(0, LoopId), F, BinOp::Add,
             M.exprConst(1.0));
    B.release(Receiver::paramIndexed(0, LoopId));
    B.endLoop();
  }
  TestBinding Binding;
  Binding.Trip = 3;
  Binding.Args = {ObjRef::array(0)};
  IterationEmitter E(Entry, Binding, CostModel{});
  std::vector<MicroOp> Ops;
  E.emit(1, Ops); // Iter = 1: partners (1+1+idx)%8 = 2, 3, 4.
  std::vector<ObjectId> Acquired;
  for (const MicroOp &Op : Ops)
    if (Op.K == MicroOp::Kind::Acquire)
      Acquired.push_back(Op.Obj);
  ASSERT_EQ(Acquired.size(), 3u);
  EXPECT_EQ(Acquired[0], 2u);
  EXPECT_EQ(Acquired[1], 3u);
  EXPECT_EQ(Acquired[2], 4u);
}

TEST(InterpTest, CallFramesBindObjectArguments) {
  // caller: loop { call this->callee(m[i]) }; callee acquires its param.
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Callee = M.createMethod("callee", C);
  Callee->addParam(Param{"x", C, false});
  {
    MethodBuilder B(M, Callee);
    B.acquire(Receiver::param(0));
    B.update(Receiver::param(0), F, BinOp::Add, M.exprConst(1.0));
    B.release(Receiver::param(0));
  }
  Method *Caller = M.createMethod("caller", C);
  Caller->addParam(Param{"m", C, true});
  {
    MethodBuilder B(M, Caller);
    const unsigned L = B.beginLoop();
    B.call(Callee, Receiver::thisObj(), {Receiver::paramIndexed(0, L)});
    B.endLoop();
  }
  TestBinding Binding;
  Binding.Trip = 2;
  Binding.Args = {ObjRef::array(0)};
  IterationEmitter E(Caller, Binding, CostModel{});
  std::vector<MicroOp> Ops;
  E.emit(0, Ops); // partners 1, 2.
  std::vector<ObjectId> Acquired;
  for (const MicroOp &Op : Ops)
    if (Op.K == MicroOp::Kind::Acquire)
      Acquired.push_back(Op.Obj);
  ASSERT_EQ(Acquired.size(), 2u);
  EXPECT_EQ(Acquired[0], 1u);
  EXPECT_EQ(Acquired[1], 2u);
}

TEST(InterpTest, ComputeTimeExcludesLockOps) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("e", C);
  {
    MethodBuilder B(M, Entry);
    B.compute();
    B.acquire(Receiver::thisObj());
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
    B.release(Receiver::thisObj());
  }
  TestBinding Binding;
  CostModel CM;
  IterationEmitter E(Entry, Binding, CM);
  EXPECT_EQ(E.computeTime(0), Binding.ComputeCost + CM.UpdateNanos);
  EXPECT_EQ(E.countPairs(0), 1u);
}

/// Entry method whose iteration is: acquire(this); loop { call
/// one_interaction(m[i]) with a compute+update body }; release(this) -- the
/// shape of a coarse-grained generated version, whose loop body lowers to
/// pure compute.
struct CoarseLoopWorkload {
  Module M{"m"};
  Method *Entry = nullptr;

  CoarseLoopWorkload() {
    ClassDecl *C = M.createClass("c");
    const unsigned F = C->addField("f");
    Method *Callee = M.createMethod("one", C);
    Callee->addParam(Param{"x", C, false});
    {
      MethodBuilder B(M, Callee);
      B.compute();
      B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
    }
    Entry = M.createMethod("e", C);
    Entry->addParam(Param{"m", C, true});
    MethodBuilder B(M, Entry);
    B.acquire(Receiver::thisObj());
    const unsigned L = B.beginLoop();
    B.call(Callee, Receiver::thisObj(), {Receiver::paramIndexed(0, L)});
    B.endLoop();
    B.release(Receiver::thisObj());
  }
};

TEST(InterpTest, PureComputeLoopFoldsToOneMergedOp) {
  // The pure-compute fast path folds every trip of the loop into a single
  // merged compute op: acquire, one compute of Trip * (compute + update),
  // release.
  CoarseLoopWorkload W;
  TestBinding Binding;
  Binding.Trip = 5;
  Binding.Args = {ObjRef::array(0)};
  CostModel CM;
  IterationEmitter E(W.Entry, Binding, CM);
  std::vector<MicroOp> Ops;
  E.emit(2, Ops);
  ASSERT_EQ(Ops.size(), 3u);
  EXPECT_EQ(Ops[0].K, MicroOp::Kind::Acquire);
  EXPECT_EQ(Ops[1].K, MicroOp::Kind::Compute);
  EXPECT_EQ(Ops[1].Dur,
            static_cast<Nanos>(Binding.Trip) *
                (Binding.ComputeCost + CM.UpdateNanos));
  EXPECT_EQ(Ops[2].K, MicroOp::Kind::Release);
}

TEST(InterpTest, UnreadArgumentsAreNotResolved) {
  // The callee's lowering never reads its object parameter, so the
  // emitter skips resolving it -- the binding's elementOf must not be
  // queried on the per-trip hot path.
  CoarseLoopWorkload W;
  TestBinding Binding;
  Binding.Trip = 7;
  Binding.Args = {ObjRef::array(0)};
  IterationEmitter E(W.Entry, Binding, CostModel{});
  std::vector<MicroOp> Ops;
  E.emit(0, Ops);
  EXPECT_EQ(Binding.ElementOfCalls, 0u);
  EXPECT_EQ(E.countPairs(0), 1u);
}

TEST(InterpTest, OpsCacheReturnsStableMemoizedSequences) {
  CoarseLoopWorkload W;
  TestBinding Binding;
  Binding.Cacheable = true;
  Binding.Args = {ObjRef::array(0)};
  IterationEmitter E(W.Entry, Binding, CostModel{});

  std::vector<MicroOp> Live;
  E.emit(1, Live);

  EmittedOpsCache Cache;
  E.attachCache(&Cache);
  std::vector<MicroOp> Scratch;
  const std::vector<MicroOp> &FirstRef = E.ops(1, Scratch);
  EXPECT_TRUE(sameOps(FirstRef, Live));
  // A repeat returns the same memoized storage, not Scratch.
  const std::vector<MicroOp> &SecondRef = E.ops(1, Scratch);
  EXPECT_EQ(&FirstRef, &SecondRef);
  EXPECT_NE(&SecondRef, &Scratch);

  // Detached again (or an uncacheable binding), ops falls back to live
  // interpretation into Scratch.
  E.attachCache(nullptr);
  const std::vector<MicroOp> &LiveRef = E.ops(1, Scratch);
  EXPECT_EQ(&LiveRef, &Scratch);
  EXPECT_TRUE(sameOps(LiveRef, Live));
}

TEST(InterpTest, UncacheableIterationsBypassTheCache) {
  CoarseLoopWorkload W;
  TestBinding Binding; // Default iterationClass: -1, never memoized.
  Binding.Args = {ObjRef::array(0)};
  IterationEmitter E(W.Entry, Binding, CostModel{});
  EmittedOpsCache Cache;
  E.attachCache(&Cache);
  std::vector<MicroOp> Scratch;
  const std::vector<MicroOp> &R1 = E.ops(0, Scratch);
  EXPECT_EQ(&R1, &Scratch);
  const std::vector<MicroOp> &R2 = E.ops(0, Scratch);
  EXPECT_EQ(&R2, &Scratch);
}

} // namespace
