//===- tests/InterpTest.cpp - Unit tests for IR lowering -------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "rt/Interp.h"

#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::rt;

namespace {

/// Minimal binding over a fixed object universe.
class TestBinding final : public DataBinding {
public:
  uint64_t Iterations = 4;
  uint32_t Objects = 8;
  uint64_t Trip = 3;
  Nanos ComputeCost = 1000;

  uint64_t iterationCount() const override { return Iterations; }
  uint32_t objectCount() const override { return Objects; }
  ObjectId thisObject(uint64_t Iter) const override {
    return static_cast<ObjectId>(Iter % Objects);
  }
  std::vector<ObjRef> sectionArgs(uint64_t) const override { return Args; }
  ObjectId elementOf(ArrayId, uint64_t Index,
                     const LoopCtx &Ctx) const override {
    return static_cast<ObjectId>((Ctx.Iter + 1 + Index) % Objects);
  }
  uint64_t tripCount(unsigned, const LoopCtx &) const override {
    return Trip;
  }
  Nanos computeNanos(unsigned, const LoopCtx &) const override {
    return ComputeCost;
  }

  std::vector<ObjRef> Args;
};

TEST(InterpTest, EmitsExplicitRegionOps) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("e", C);
  {
    MethodBuilder B(M, Entry);
    B.compute();
    B.acquire(Receiver::thisObj());
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
    B.release(Receiver::thisObj());
  }

  TestBinding Binding;
  CostModel CM;
  IterationEmitter E(Entry, Binding, CM);
  std::vector<MicroOp> Ops;
  E.emit(2, Ops);
  ASSERT_EQ(Ops.size(), 4u);
  EXPECT_EQ(Ops[0].K, MicroOp::Kind::Compute);
  EXPECT_EQ(Ops[0].Dur, Binding.ComputeCost);
  EXPECT_EQ(Ops[1].K, MicroOp::Kind::Acquire);
  EXPECT_EQ(Ops[1].Obj, 2u); // thisObject(2)
  EXPECT_EQ(Ops[2].K, MicroOp::Kind::Compute);
  EXPECT_EQ(Ops[2].Dur, CM.UpdateNanos);
  EXPECT_EQ(Ops[3].K, MicroOp::Kind::Release);
}

TEST(InterpTest, MergesAdjacentComputes) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("e", C);
  {
    MethodBuilder B(M, Entry);
    B.compute();
    B.compute();
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
  }
  TestBinding Binding;
  CostModel CM;
  IterationEmitter E(Entry, Binding, CM);
  std::vector<MicroOp> Ops;
  E.emit(0, Ops);
  // Two computes + the naked update all merge into one compute op.
  ASSERT_EQ(Ops.size(), 1u);
  EXPECT_EQ(Ops[0].Dur, 2 * Binding.ComputeCost + CM.UpdateNanos);
}

TEST(InterpTest, LoopsUnrollWithTripCount) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Entry = M.createMethod("e", C);
  {
    MethodBuilder B(M, Entry);
    B.beginLoop();
    B.acquire(Receiver::thisObj());
    B.release(Receiver::thisObj());
    B.endLoop();
  }
  TestBinding Binding;
  Binding.Trip = 5;
  IterationEmitter E(Entry, Binding, CostModel{});
  EXPECT_EQ(E.countPairs(0), 5u);
}

TEST(InterpTest, ParamIndexedResolvesThroughBinding) {
  // Lock object varies with loop index: acquire(m[i]).
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("e", C);
  Entry->addParam(Param{"m", C, true});
  unsigned LoopId;
  {
    MethodBuilder B(M, Entry);
    LoopId = B.beginLoop();
    B.acquire(Receiver::paramIndexed(0, LoopId));
    B.update(Receiver::paramIndexed(0, LoopId), F, BinOp::Add,
             M.exprConst(1.0));
    B.release(Receiver::paramIndexed(0, LoopId));
    B.endLoop();
  }
  TestBinding Binding;
  Binding.Trip = 3;
  Binding.Args = {ObjRef::array(0)};
  IterationEmitter E(Entry, Binding, CostModel{});
  std::vector<MicroOp> Ops;
  E.emit(1, Ops); // Iter = 1: partners (1+1+idx)%8 = 2, 3, 4.
  std::vector<ObjectId> Acquired;
  for (const MicroOp &Op : Ops)
    if (Op.K == MicroOp::Kind::Acquire)
      Acquired.push_back(Op.Obj);
  ASSERT_EQ(Acquired.size(), 3u);
  EXPECT_EQ(Acquired[0], 2u);
  EXPECT_EQ(Acquired[1], 3u);
  EXPECT_EQ(Acquired[2], 4u);
}

TEST(InterpTest, CallFramesBindObjectArguments) {
  // caller: loop { call this->callee(m[i]) }; callee acquires its param.
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Callee = M.createMethod("callee", C);
  Callee->addParam(Param{"x", C, false});
  {
    MethodBuilder B(M, Callee);
    B.acquire(Receiver::param(0));
    B.update(Receiver::param(0), F, BinOp::Add, M.exprConst(1.0));
    B.release(Receiver::param(0));
  }
  Method *Caller = M.createMethod("caller", C);
  Caller->addParam(Param{"m", C, true});
  {
    MethodBuilder B(M, Caller);
    const unsigned L = B.beginLoop();
    B.call(Callee, Receiver::thisObj(), {Receiver::paramIndexed(0, L)});
    B.endLoop();
  }
  TestBinding Binding;
  Binding.Trip = 2;
  Binding.Args = {ObjRef::array(0)};
  IterationEmitter E(Caller, Binding, CostModel{});
  std::vector<MicroOp> Ops;
  E.emit(0, Ops); // partners 1, 2.
  std::vector<ObjectId> Acquired;
  for (const MicroOp &Op : Ops)
    if (Op.K == MicroOp::Kind::Acquire)
      Acquired.push_back(Op.Obj);
  ASSERT_EQ(Acquired.size(), 2u);
  EXPECT_EQ(Acquired[0], 1u);
  EXPECT_EQ(Acquired[1], 2u);
}

TEST(InterpTest, ComputeTimeExcludesLockOps) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("e", C);
  {
    MethodBuilder B(M, Entry);
    B.compute();
    B.acquire(Receiver::thisObj());
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
    B.release(Receiver::thisObj());
  }
  TestBinding Binding;
  CostModel CM;
  IterationEmitter E(Entry, Binding, CM);
  EXPECT_EQ(E.computeTime(0), Binding.ComputeCost + CM.UpdateNanos);
  EXPECT_EQ(E.countPairs(0), 1u);
}

} // namespace
