//===- tests/PerturbTest.cpp - Perturbation engine and robustness tests ----==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Deterministic fault injection (src/perturb) and the feedback controller's
// robustness against it: schedule parsing, engine queries, simulator
// injection, the adaptivity flip under a mid-run contention burst, switch
// hysteresis, and the no-NaN trace invariants. Every suite name contains
// "Perturb" so `ctest -R Perturb` runs exactly this file; the seeded tests
// honour DYNFB_PERTURB_SEED for multi-seed stress runs.
//
//===----------------------------------------------------------------------===//

#include "fb/Controller.h"
#include "ir/Builder.h"
#include "perturb/Engine.h"
#include "perturb/Traffic.h"
#include "sim/SectionSim.h"

#include <cmath>
#include <cstdlib>
#include <functional>
#include <gtest/gtest.h>
#include <limits>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::rt;
using namespace dynfb::sim;
using namespace dynfb::perturb;

namespace {

constexpr Nanos Unbounded = std::numeric_limits<Nanos>::max() / 4;

uint64_t stressSeed() {
  if (const char *S = std::getenv("DYNFB_PERTURB_SEED"))
    return std::strtoull(S, nullptr, 10);
  return 1;
}

// --------------------------- Schedule parsing -----------------------------

TEST(PerturbScheduleTest, ParsesFullGrammar) {
  std::string Error;
  const auto Sched = parseSchedule(
      "slowdown@0.5s-2s:factor=3:proc=1,"
      "contend@1s-inf:extra=300us:obj=1-64:section=S,"
      "timernoise@0s-1s:amp=2us:seed=42",
      Error);
  ASSERT_TRUE(Sched.has_value()) << Error;
  ASSERT_EQ(Sched->Events.size(), 3u);
  EXPECT_EQ(Sched->Seed, 42u);

  const FaultEvent &Slow = Sched->Events[0];
  EXPECT_EQ(Slow.Kind, FaultKind::ProcSlowdown);
  EXPECT_EQ(Slow.StartNanos, millisToNanos(500));
  EXPECT_EQ(Slow.EndNanos, secondsToNanos(2));
  EXPECT_DOUBLE_EQ(Slow.Factor, 3.0);
  EXPECT_EQ(Slow.Proc, 1);

  const FaultEvent &Burst = Sched->Events[1];
  EXPECT_EQ(Burst.Kind, FaultKind::ContentionBurst);
  EXPECT_EQ(Burst.ExtraNanos, 300000);
  EXPECT_EQ(Burst.ObjLo, 1);
  EXPECT_EQ(Burst.ObjHi, 64);
  EXPECT_EQ(Burst.Section, "S");
  EXPECT_GT(Burst.EndNanos, secondsToNanos(1000000)); // "inf".

  const FaultEvent &Noise = Sched->Events[2];
  EXPECT_EQ(Noise.Kind, FaultKind::TimerNoise);
  EXPECT_EQ(Noise.AmplitudeNanos, 2000);
}

TEST(PerturbScheduleTest, AppliesPerKindDefaults) {
  std::string Error;
  const auto Sched =
      parseSchedule("contend@1s-2s,slowdown@0s-1s,timernoise@0s-1s", Error);
  ASSERT_TRUE(Sched.has_value()) << Error;
  EXPECT_EQ(Sched->Events[0].ExtraNanos, 100000);
  EXPECT_DOUBLE_EQ(Sched->Events[1].Factor, 4.0);
  EXPECT_EQ(Sched->Events[2].AmplitudeNanos, 5000);
}

TEST(PerturbScheduleTest, ParsesScientificNotationTimes) {
  std::string Error;
  const auto Sched = parseSchedule("slowdown@1e-3s-2e-3s", Error);
  ASSERT_TRUE(Sched.has_value()) << Error;
  EXPECT_EQ(Sched->Events[0].StartNanos, 1000000);
  EXPECT_EQ(Sched->Events[0].EndNanos, 2000000);
}

TEST(PerturbScheduleTest, RejectsMalformedSpecsWithDiagnostic) {
  const char *Bad[] = {
      "",                          // Empty.
      "bogus@1s-2s",               // Unknown kind.
      "contend@oops",              // No window.
      "slowdown@2s-1s",            // End before start.
      "slowdown@1s-2s:factor=0",   // Factor out of range.
      "contend@1s-2s:nonsense=3",  // Unknown option.
      "contend@1s-2s:extra=",      // Missing value.
      "slowdown@1s",               // Window is not a range.
  };
  for (const char *Spec : Bad) {
    std::string Error;
    EXPECT_FALSE(parseSchedule(Spec, Error).has_value()) << Spec;
    EXPECT_FALSE(Error.empty()) << Spec;
    EXPECT_EQ(Error.find('\n'), std::string::npos)
        << "diagnostic must be one line: " << Error;
  }
}

TEST(PerturbScheduleTest, RenderRoundTrips) {
  std::string Error;
  const std::string Spec =
      "phaseshift@2s-inf:factor=0.1,"
      "contend@0.5s-1.5s:extra=300us:obj=1-64:section=S";
  const auto Sched = parseSchedule(Spec, Error);
  ASSERT_TRUE(Sched.has_value()) << Error;
  const std::string Rendered = renderSchedule(*Sched);
  const auto Again = parseSchedule(Rendered, Error);
  ASSERT_TRUE(Again.has_value()) << Rendered << ": " << Error;
  EXPECT_EQ(renderSchedule(*Again), Rendered);
  ASSERT_EQ(Again->Events.size(), Sched->Events.size());
  EXPECT_EQ(Again->Events[1].ExtraNanos, Sched->Events[1].ExtraNanos);
}

TEST(PerturbScheduleTest, ReportsReferencedSections) {
  std::string Error;
  const auto Sched = parseSchedule(
      "contend@1s-2s:section=A,lockhold@0s-1s,slowdown@0s-1s:section=A,"
      "phaseshift@0s-1s:section=B",
      Error);
  ASSERT_TRUE(Sched.has_value()) << Error;
  EXPECT_EQ(Sched->referencedSections(),
            (std::vector<std::string>{"A", "B"}));
}

// --------------------------- Schedule validation --------------------------

TEST(PerturbValidateTest, AcceptsInRangeMonotonicSchedule) {
  std::string Error;
  const auto Sched = parseSchedule(
      "slowdown@0s-1s:factor=2:proc=3,contend@1s-2s:extra=100us", Error);
  ASSERT_TRUE(Sched.has_value()) << Error;
  EXPECT_TRUE(validateSchedule(*Sched, 4, Error)) << Error;
}

TEST(PerturbValidateTest, RejectsProcOutOfRangeWithDiagnostic) {
  std::string Error;
  const auto Sched =
      parseSchedule("slowdown@1s-2s:factor=3:proc=7", Error);
  ASSERT_TRUE(Sched.has_value()) << Error;
  EXPECT_FALSE(validateSchedule(*Sched, 4, Error));
  EXPECT_NE(Error.find("proc=7 out of range for 4 processors"),
            std::string::npos)
      << Error;
  EXPECT_NE(Error.find("valid 0..3"), std::string::npos) << Error;
  // The same schedule is fine on a machine that has the processor.
  EXPECT_TRUE(validateSchedule(*Sched, 8, Error)) << Error;
}

TEST(PerturbValidateTest, RejectsNonMonotonicActivationTimes) {
  std::string Error;
  const auto Sched = parseSchedule(
      "contend@2s-3s:extra=100us,contend@1s-2s:extra=100us", Error);
  ASSERT_TRUE(Sched.has_value()) << Error;
  EXPECT_FALSE(validateSchedule(*Sched, 4, Error));
  EXPECT_NE(Error.find("non-decreasing"), std::string::npos) << Error;
}

// --------------------------- Traffic compilation --------------------------

TEST(PerturbTrafficTest, ParseRenderRoundTrips) {
  std::string Error;
  const auto Spec = parseTraffic(
      "storm:window=60ms:windows=6:tenants=3:peak=2.5:burst=150us:"
      "storm=0.4:seed=9:loop=closed",
      Error);
  ASSERT_TRUE(Spec.has_value()) << Error;
  EXPECT_EQ(Spec->Mix, TrafficMix::Storm);
  EXPECT_EQ(Spec->WindowNanos, millisToNanos(60));
  EXPECT_EQ(Spec->Windows, 6u);
  EXPECT_EQ(Spec->Tenants, 3u);
  EXPECT_DOUBLE_EQ(Spec->PeakFactor, 2.5);
  EXPECT_EQ(Spec->BurstExtraNanos, 150000);
  EXPECT_DOUBLE_EQ(Spec->StormProbability, 0.4);
  EXPECT_EQ(Spec->Seed, 9u);
  EXPECT_TRUE(Spec->ClosedLoop);

  const std::string Rendered = renderTraffic(*Spec);
  const auto Again = parseTraffic(Rendered, Error);
  ASSERT_TRUE(Again.has_value()) << Rendered << ": " << Error;
  EXPECT_EQ(renderTraffic(*Again), Rendered);
}

TEST(PerturbTrafficTest, RejectsMalformedSpecsWithDiagnostic) {
  const char *Bad[] = {
      "",                      // Empty.
      "monsoon:windows=4",     // Unknown mix.
      "steady:windows=",       // Missing value.
      "diurnal:cadence=2s",    // Unknown option.
      "storm:storm=nope",      // Unparseable value.
  };
  for (const char *Spec : Bad) {
    std::string Error;
    EXPECT_FALSE(parseTraffic(Spec, Error).has_value()) << Spec;
    EXPECT_FALSE(Error.empty()) << Spec;
  }
}

TEST(PerturbTrafficTest, CompiledScheduleIsSortedDeterministicAndValid) {
  std::string Error;
  const auto Spec =
      parseTraffic("storm:window=50ms:windows=8:storm=1:seed=5", Error);
  ASSERT_TRUE(Spec.has_value()) << Error;
  const unsigned NumShards = 64, NumProcs = 8;
  const PerturbationSchedule A = compileTraffic(*Spec, NumShards, NumProcs);
  const PerturbationSchedule B = compileTraffic(*Spec, NumShards, NumProcs);
  ASSERT_FALSE(A.empty());
  EXPECT_EQ(renderSchedule(A), renderSchedule(B));
  EXPECT_TRUE(validateSchedule(A, NumProcs, Error)) << Error;
  for (size_t I = 1; I < A.Events.size(); ++I)
    EXPECT_GE(A.Events[I].StartNanos, A.Events[I - 1].StartNanos);
  for (const FaultEvent &E : A.Events) {
    if (E.Kind == FaultKind::ContentionBurst && E.ObjLo >= 0) {
      EXPECT_GE(E.ObjLo, 0);
      EXPECT_LT(E.ObjHi, static_cast<int64_t>(NumShards));
    }
    if (E.Kind == FaultKind::ProcSlowdown && E.Proc >= 0)
      EXPECT_LT(E.Proc, static_cast<int>(NumProcs));
  }
  // storm=1 guarantees every window storms: slowdowns must appear.
  bool SawSlowdown = false, SawBurst = false;
  for (const FaultEvent &E : A.Events) {
    SawSlowdown |= E.Kind == FaultKind::ProcSlowdown;
    SawBurst |= E.Kind == FaultKind::ContentionBurst;
  }
  EXPECT_TRUE(SawSlowdown);
  EXPECT_TRUE(SawBurst);
}

TEST(PerturbTrafficTest, ClosedLoopSuppressesIntensityEvents) {
  std::string Error;
  const auto Open = parseTraffic("diurnal:window=100ms:peak=3", Error);
  ASSERT_TRUE(Open.has_value()) << Error;
  const auto Closed =
      parseTraffic("diurnal:window=100ms:peak=3:loop=closed", Error);
  ASSERT_TRUE(Closed.has_value()) << Error;

  const auto CountShifts = [](const PerturbationSchedule &S) {
    unsigned N = 0;
    for (const FaultEvent &E : S.Events)
      N += E.Kind == FaultKind::PhaseShift;
    return N;
  };
  EXPECT_GT(CountShifts(compileTraffic(*Open, 16, 4)), 0u);
  EXPECT_EQ(CountShifts(compileTraffic(*Closed, 16, 4)), 0u);
}

// ----------------------------- Engine queries -----------------------------

TEST(PerturbEngineTest, WindowsAreHalfOpen) {
  FaultEvent E;
  E.Kind = FaultKind::PhaseShift;
  E.StartNanos = 100;
  E.EndNanos = 200;
  E.Factor = 2.0;
  const PerturbationEngine Engine(PerturbationSchedule{{E}, 1});
  EXPECT_DOUBLE_EQ(Engine.computeScale("S", 0, 99), 1.0);
  EXPECT_DOUBLE_EQ(Engine.computeScale("S", 0, 100), 2.0);
  EXPECT_DOUBLE_EQ(Engine.computeScale("S", 0, 199), 2.0);
  EXPECT_DOUBLE_EQ(Engine.computeScale("S", 0, 200), 1.0);
}

TEST(PerturbEngineTest, FiltersByProcSectionAndObject) {
  FaultEvent Slow;
  Slow.Kind = FaultKind::ProcSlowdown;
  Slow.StartNanos = 0;
  Slow.EndNanos = 1000;
  Slow.Factor = 3.0;
  Slow.Proc = 2;
  Slow.Section = "S";
  FaultEvent Burst;
  Burst.Kind = FaultKind::ContentionBurst;
  Burst.StartNanos = 0;
  Burst.EndNanos = 1000;
  Burst.ExtraNanos = 50;
  Burst.ObjLo = 10;
  Burst.ObjHi = 20;
  const PerturbationEngine Engine(PerturbationSchedule{{Slow, Burst}, 1});

  EXPECT_DOUBLE_EQ(Engine.computeScale("S", 2, 0), 3.0);
  EXPECT_DOUBLE_EQ(Engine.computeScale("S", 1, 0), 1.0); // Wrong proc.
  EXPECT_DOUBLE_EQ(Engine.computeScale("T", 2, 0), 1.0); // Wrong section.
  EXPECT_TRUE(Engine.mayAffect("S"));
  EXPECT_TRUE(Engine.mayAffect("T")); // The burst has no section filter.

  EXPECT_EQ(Engine.contentionExtra("S", 15, 0), 50);
  EXPECT_EQ(Engine.contentionExtra("S", 9, 0), 0);
  EXPECT_EQ(Engine.contentionExtra("S", 21, 0), 0);
}

TEST(PerturbEngineTest, OverlappingSlowdownsCompose) {
  FaultEvent A, B;
  A.Kind = B.Kind = FaultKind::ProcSlowdown;
  A.StartNanos = B.StartNanos = 0;
  A.EndNanos = B.EndNanos = 1000;
  A.Factor = 2.0;
  B.Factor = 3.0;
  const PerturbationEngine Engine(PerturbationSchedule{{A, B}, 1});
  EXPECT_DOUBLE_EQ(Engine.computeScale("S", 0, 5), 6.0);
}

TEST(PerturbEngineTest, TimerNoiseIsDeterministicAndBounded) {
  FaultEvent E;
  E.Kind = FaultKind::TimerNoise;
  E.StartNanos = 0;
  E.EndNanos = Unbounded;
  E.AmplitudeNanos = 5000;
  const PerturbationEngine Engine(
      PerturbationSchedule{{E}, stressSeed()});
  for (Nanos T = 0; T < 100000; T += 7919) {
    const Nanos N1 = Engine.timerNoise("S", 3, T);
    const Nanos N2 = Engine.timerNoise("S", 3, T);
    EXPECT_EQ(N1, N2);
    EXPECT_LE(std::abs(N1), E.AmplitudeNanos);
  }
  // Outside the window there is no noise at all.
  FaultEvent Late = E;
  Late.StartNanos = 1000;
  Late.EndNanos = 2000;
  const PerturbationEngine LateEngine(
      PerturbationSchedule{{Late}, stressSeed()});
  EXPECT_EQ(LateEngine.timerNoise("S", 3, 999), 0);
  EXPECT_EQ(LateEngine.timerNoise("S", 3, 2000), 0);
}

// --------------------------- Simulator injection --------------------------

/// The SimTest toy workload: compute D; acquire(lock); update; release.
struct ToyWorkload {
  Module M{"toy"};
  Method *Entry = nullptr;

  ToyWorkload() {
    ClassDecl *C = M.createClass("c");
    const unsigned F = C->addField("f");
    Entry = M.createMethod("work", C);
    MethodBuilder B(M, Entry);
    B.compute();
    B.acquire(Receiver::thisObj());
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
    B.release(Receiver::thisObj());
  }
};

class ToyBinding final : public DataBinding {
public:
  uint64_t Iterations = 8;
  uint32_t Objects = 8;
  bool SharedLock = false;
  Nanos ComputeCost = 100000; // 100 us

  uint64_t iterationCount() const override { return Iterations; }
  uint32_t objectCount() const override { return Objects; }
  ObjectId thisObject(uint64_t Iter) const override {
    return SharedLock ? 0 : static_cast<ObjectId>(Iter % Objects);
  }
  std::vector<ObjRef> sectionArgs(uint64_t) const override { return {}; }
  ObjectId elementOf(ArrayId, uint64_t, const LoopCtx &) const override {
    return 0;
  }
  uint64_t tripCount(unsigned, const LoopCtx &) const override { return 1; }
  Nanos computeNanos(unsigned, const LoopCtx &) const override {
    return ComputeCost;
  }
};

struct ToyRun {
  IntervalReport Report;
  Nanos MachineEnd = 0;
};

ToyRun runToy(const PerturbationEngine *Engine, unsigned Procs = 1,
              uint64_t Iterations = 4, const std::string &Section = "S") {
  ToyWorkload W;
  ToyBinding B;
  B.Iterations = Iterations;
  // One private object per iteration: organic contention can never occur,
  // so any waiting that shows up was injected.
  B.Objects = static_cast<uint32_t>(Iterations < 8 ? 8 : Iterations);
  SimMachine Machine(Procs, CostModel{});
  Machine.setPerturbation(Engine);
  SimSectionRunner Runner(Machine, B, {SimVersion{"only", W.Entry}}, false);
  Runner.setPerturbation(Machine.perturbation(), Section);
  ToyRun R;
  R.Report = Runner.runInterval(0, Unbounded);
  R.MachineEnd = Machine.now();
  return R;
}

bool sameReport(const IntervalReport &A, const IntervalReport &B) {
  return A.EffectiveNanos == B.EffectiveNanos &&
         A.InjectedNanos == B.InjectedNanos &&
         A.Stats.ExecNanos == B.Stats.ExecNanos &&
         A.Stats.LockOpNanos == B.Stats.LockOpNanos &&
         A.Stats.WaitNanos == B.Stats.WaitNanos &&
         A.Stats.FailedAcquires == B.Stats.FailedAcquires &&
         A.Stats.AcquireReleasePairs == B.Stats.AcquireReleasePairs;
}

TEST(PerturbSimTest, DisabledOrIrrelevantScheduleIsByteIdentical) {
  const ToyRun Baseline = runToy(nullptr);
  EXPECT_EQ(Baseline.Report.InjectedNanos, 0);

  // A schedule scoped entirely to another section must not change a thing.
  FaultEvent E;
  E.Kind = FaultKind::ProcSlowdown;
  E.StartNanos = 0;
  E.EndNanos = Unbounded;
  E.Factor = 10.0;
  E.Section = "OTHER";
  const PerturbationEngine Engine(PerturbationSchedule{{E}, 1});
  const ToyRun Scoped = runToy(&Engine);
  EXPECT_TRUE(sameReport(Baseline.Report, Scoped.Report));
  EXPECT_EQ(Baseline.MachineEnd, Scoped.MachineEnd);

  // So must an event whose window ends before the section starts running.
  FaultEvent Early = E;
  Early.Section.clear();
  Early.StartNanos = 0;
  Early.EndNanos = 0 + 1; // Over before the first compute op completes.
  const PerturbationEngine EarlyEngine(PerturbationSchedule{{Early}, 1});
  const ToyRun Windowed = runToy(&EarlyEngine);
  EXPECT_TRUE(sameReport(Baseline.Report, Windowed.Report));
}

TEST(PerturbSimTest, SlowdownInjectionIsExactlyAccounted) {
  const ToyRun Baseline = runToy(nullptr);

  FaultEvent E;
  E.Kind = FaultKind::ProcSlowdown;
  E.StartNanos = 0;
  E.EndNanos = Unbounded;
  E.Factor = 2.0;
  const PerturbationEngine Engine(PerturbationSchedule{{E}, 1});
  const ToyRun Slowed = runToy(&Engine);

  EXPECT_GT(Slowed.Report.InjectedNanos, 0);
  // Single processor: the injected time is exactly the wall-clock growth.
  EXPECT_EQ(Slowed.Report.EffectiveNanos,
            Baseline.Report.EffectiveNanos + Slowed.Report.InjectedNanos);
  // Doubling compute leaves lock accounting untouched.
  EXPECT_EQ(Slowed.Report.Stats.LockOpNanos,
            Baseline.Report.Stats.LockOpNanos);
}

TEST(PerturbSimTest, LockHoldSpikeSurchargesEveryLockConstruct) {
  const ToyRun Baseline = runToy(nullptr);

  FaultEvent E;
  E.Kind = FaultKind::LockHoldSpike;
  E.StartNanos = 0;
  E.EndNanos = Unbounded;
  E.ExtraNanos = 10000;
  const PerturbationEngine Engine(PerturbationSchedule{{E}, 1});
  const ToyRun Spiked = runToy(&Engine);

  // 4 iterations x (acquire + release) x 10 us.
  EXPECT_EQ(Spiked.Report.Stats.LockOpNanos - Baseline.Report.Stats.LockOpNanos,
            4 * 2 * E.ExtraNanos);
  EXPECT_EQ(Spiked.Report.InjectedNanos, 4 * 2 * E.ExtraNanos);
}

TEST(PerturbSimTest, ContentionBurstInjectsCountedWaiting) {
  const ToyRun Baseline = runToy(nullptr, 4, 16);
  EXPECT_EQ(Baseline.Report.Stats.WaitNanos, 0);
  EXPECT_EQ(Baseline.Report.Stats.FailedAcquires, 0u);

  FaultEvent E;
  E.Kind = FaultKind::ContentionBurst;
  E.StartNanos = 0;
  E.EndNanos = Unbounded;
  E.ExtraNanos = 50000;
  const PerturbationEngine Engine(PerturbationSchedule{{E}, 1});
  const ToyRun Burst = runToy(&Engine, 4, 16);

  // Waiting appears on a workload with otherwise uncontended private locks,
  // and it is accounted the paper's way: as counted failed acquires.
  EXPECT_EQ(Burst.Report.Stats.WaitNanos, 16 * E.ExtraNanos);
  EXPECT_EQ(Burst.Report.Stats.FailedAcquires,
            16u * static_cast<uint64_t>((E.ExtraNanos + 999) / 1000));
  EXPECT_EQ(Burst.Report.Stats.AcquireReleasePairs,
            Baseline.Report.Stats.AcquireReleasePairs);
}

TEST(PerturbSimTest, SeededTimerNoiseIsReproducible) {
  FaultEvent E;
  E.Kind = FaultKind::TimerNoise;
  E.StartNanos = 0;
  E.EndNanos = Unbounded;
  E.AmplitudeNanos = 8000;
  const PerturbationEngine Engine(
      PerturbationSchedule{{E}, stressSeed()});
  const ToyRun A = runToy(&Engine, 4, 32);
  const ToyRun B = runToy(&Engine, 4, 32);
  EXPECT_TRUE(sameReport(A.Report, B.Report));
  EXPECT_EQ(A.MachineEnd, B.MachineEnd);
  // The noise actually perturbed something, and nothing went negative.
  EXPECT_NE(A.Report.InjectedNanos, 0);
  EXPECT_GT(A.Report.EffectiveNanos, 0);
  EXPECT_GE(A.Report.Stats.ExecNanos, 0);
}

// ------------------ Machine checked error paths (DYNFB_CHECK) -------------

TEST(PerturbMachineDeathTest, AdvanceRejectsNegativeDuration) {
  SimMachine Machine(1, CostModel{});
  EXPECT_DEATH(Machine.advance(-1), "negative duration");
}

TEST(PerturbMachineDeathTest, AdvanceRejectsVirtualTimeOverflow) {
  SimMachine Machine(1, CostModel{});
  Machine.advance(std::numeric_limits<Nanos>::max() - 10);
  EXPECT_DEATH(Machine.advance(100), "overflow");
}

// ------------- Acceptance (a): adaptivity under a contention burst --------

/// Two-version workload: "fine" locks a private per-iteration object
/// (objects 1..64); "coarse" locks the single shared object 0 passed as a
/// section argument. At baseline fine is best (no serialization); a
/// contention burst against the private objects makes coarse best.
struct TwoVersionWorkload {
  Module M{"adapt"};
  Method *Fine = nullptr;
  Method *Coarse = nullptr;
  unsigned OuterClass = 0, InnerClass = 0;

  TwoVersionWorkload() {
    ClassDecl *C = M.createClass("c");
    const unsigned F = C->addField("f");
    Fine = M.createMethod("fine", C);
    {
      MethodBuilder B(M, Fine);
      OuterClass = B.compute();
      B.acquire(Receiver::thisObj());
      InnerClass = B.compute();
      B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
      B.release(Receiver::thisObj());
    }
    Coarse = M.createMethod("coarse", C);
    Coarse->addParam(Param{"global", C, false});
    {
      MethodBuilder B(M, Coarse);
      B.computeWithClass(OuterClass);
      B.acquire(Receiver::param(0));
      B.computeWithClass(InnerClass);
      B.update(Receiver::param(0), F, BinOp::Add, M.exprConst(1.0));
      B.release(Receiver::param(0));
    }
  }
};

class TwoVersionBinding final : public DataBinding {
public:
  uint64_t Iterations = 12000;
  unsigned OuterClass = 0;

  uint64_t iterationCount() const override { return Iterations; }
  uint32_t objectCount() const override { return 65; }
  ObjectId thisObject(uint64_t Iter) const override {
    return static_cast<ObjectId>(1 + Iter % 64);
  }
  std::vector<ObjRef> sectionArgs(uint64_t) const override {
    return {ObjRef::single(0)};
  }
  ObjectId elementOf(ArrayId, uint64_t, const LoopCtx &) const override {
    return 0;
  }
  uint64_t tripCount(unsigned, const LoopCtx &) const override { return 1; }
  Nanos computeNanos(unsigned CostClass, const LoopCtx &) const override {
    return CostClass == OuterClass ? 100000 : 30000; // 100 us / 30 us.
  }
};

/// The burst: from 50 ms of virtual time on, every acquire of a private
/// object (1..64) waits an extra 500 us -- an external agent hammering the
/// fine-grain locks.
PerturbationEngine privateLockBurst() {
  FaultEvent E;
  E.Kind = FaultKind::ContentionBurst;
  E.StartNanos = millisToNanos(50);
  E.EndNanos = Unbounded;
  E.ExtraNanos = 500000;
  E.ObjLo = 1;
  E.ObjHi = 64;
  return PerturbationEngine(PerturbationSchedule{{E}, 1});
}

TEST(PerturbAdaptTest, ControllerFlipsVersionWithinOneResamplingCycle) {
  TwoVersionWorkload W;
  TwoVersionBinding B;
  B.OuterClass = W.OuterClass;
  const PerturbationEngine Engine = privateLockBurst();

  SimMachine Machine(4, CostModel{});
  Machine.setPerturbation(&Engine);
  SimSectionRunner Runner(
      Machine, B,
      {SimVersion{"fine", W.Fine}, SimVersion{"coarse", W.Coarse}}, false);
  Runner.setPerturbation(Machine.perturbation(), "S");

  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = millisToNanos(10);
  Config.TargetProductionNanos = millisToNanos(100);
  fb::FeedbackController C(Config);
  const fb::SectionExecutionTrace T = C.executeSection(Runner, "S");

  // Sampling before the burst picks fine; the first resampling after the
  // burst hits must already pick coarse -- and every one after it.
  ASSERT_GE(T.ChosenVersions.size(), 3u);
  EXPECT_EQ(T.ChosenVersions.front(), 0u) << "fine must win at baseline";
  for (size_t I = 1; I < T.ChosenVersions.size(); ++I)
    EXPECT_EQ(T.ChosenVersions[I], 1u)
        << "controller must switch to coarse within one resampling cycle";
  EXPECT_EQ(T.dominantVersion(), 1u);
}

TEST(PerturbAdaptTest, NoFeedbackBaselineStaysStaleAndSlower) {
  TwoVersionWorkload W;
  const PerturbationEngine Engine = privateLockBurst();

  // No-feedback baseline: fine-grain locking forever, through the burst.
  TwoVersionBinding FixedB;
  FixedB.OuterClass = W.OuterClass;
  SimMachine FixedMachine(4, CostModel{});
  FixedMachine.setPerturbation(&Engine);
  SimSectionRunner FixedRunner(
      FixedMachine, FixedB,
      {SimVersion{"fine", W.Fine}, SimVersion{"coarse", W.Coarse}}, false);
  FixedRunner.setPerturbation(FixedMachine.perturbation(), "S");
  OverheadStats FixedStats;
  while (!FixedRunner.done())
    FixedStats.merge(FixedRunner.runInterval(0, Unbounded).Stats);

  // Adaptive run over the identical workload and schedule.
  TwoVersionBinding DynB;
  DynB.OuterClass = W.OuterClass;
  SimMachine DynMachine(4, CostModel{});
  DynMachine.setPerturbation(&Engine);
  SimSectionRunner DynRunner(
      DynMachine, DynB,
      {SimVersion{"fine", W.Fine}, SimVersion{"coarse", W.Coarse}}, false);
  DynRunner.setPerturbation(DynMachine.perturbation(), "S");
  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = millisToNanos(10);
  Config.TargetProductionNanos = millisToNanos(100);
  fb::FeedbackController C(Config);
  C.executeSection(DynRunner, "S");

  // The stale baseline eats the injected waiting for the whole run; dynamic
  // feedback escapes to coarse locking and finishes far sooner.
  EXPECT_GT(FixedStats.WaitNanos, secondsToNanos(1));
  EXPECT_LT(DynMachine.now(), FixedMachine.now() / 2);
}

// ------------- Acceptance (b): hysteresis under measurement noise ---------

/// Synthetic runner (the FbTest mock): version V's overhead is
/// OverheadFn(V, now); each interval consumes min(target, remaining).
class SyntheticRunner : public IntervalRunner {
public:
  SyntheticRunner(unsigned NumVersions, Nanos TotalWork,
                  std::function<double(unsigned, Nanos)> OverheadFn)
      : NumVersionsV(NumVersions), TotalWork(TotalWork),
        OverheadFn(std::move(OverheadFn)) {}

  unsigned numVersions() const override { return NumVersionsV; }
  std::string versionLabel(unsigned V) const override {
    return "v" + std::to_string(V);
  }
  IntervalReport runInterval(unsigned V, Nanos Target) override {
    const double Overhead = OverheadFn(V, Clock);
    const Nanos Dur = std::min(Target, Nanos(static_cast<double>(Remaining) /
                                             (1.0 - Overhead)));
    Clock += Dur;
    Remaining -= static_cast<Nanos>(static_cast<double>(Dur) *
                                    (1.0 - Overhead));
    if (Remaining < 1000)
      Remaining = 0;
    IntervalReport R;
    R.EffectiveNanos = Dur;
    R.Stats.ExecNanos = Dur;
    R.Stats.LockOpNanos = static_cast<Nanos>(Overhead * Dur);
    R.Finished = Remaining == 0;
    return R;
  }
  bool done() const override { return Remaining == 0; }
  void reset() override { Remaining = TotalWork; }
  Nanos now() const override { return Clock; }

  const unsigned NumVersionsV;
  const Nanos TotalWork;
  Nanos Remaining = TotalWork;
  Nanos Clock = 0;
  std::function<double(unsigned, Nanos)> OverheadFn;
};

/// Noise-only environment: both versions hover around 0.30, their ranking
/// flipping by +-0.02 with a 37 ms period. No version is genuinely better.
double noisyOverhead(unsigned V, Nanos Now) {
  const double Wobble =
      (Now / millisToNanos(37)) % 2 == 0 ? 0.02 : -0.02;
  return 0.30 + (V == 0 ? Wobble : -Wobble);
}

unsigned distinctChoices(const std::vector<unsigned> &Chosen) {
  unsigned Switches = 0;
  for (size_t I = 1; I < Chosen.size(); ++I)
    if (Chosen[I] != Chosen[I - 1])
      ++Switches;
  return Switches;
}

TEST(PerturbHysteresisTest, NoiseOnlyRunsNeverSwitchWithHysteresis) {
  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = millisToNanos(10);
  Config.TargetProductionNanos = millisToNanos(100);

  // Control: without hysteresis the noise makes the controller thrash.
  SyntheticRunner Thrash(2, secondsToNanos(1), noisyOverhead);
  fb::FeedbackController C0(Config);
  const fb::SectionExecutionTrace T0 = C0.executeSection(Thrash, "S");
  ASSERT_GE(T0.ChosenVersions.size(), 4u);
  EXPECT_GT(distinctChoices(T0.ChosenVersions), 0u);
  EXPECT_EQ(T0.HysteresisHolds, 0u);

  // With a margin above the noise amplitude: zero spurious switches.
  Config.SwitchHysteresis = 0.05;
  SyntheticRunner Steady(2, secondsToNanos(1), noisyOverhead);
  fb::FeedbackController C1(Config);
  const fb::SectionExecutionTrace T1 = C1.executeSection(Steady, "S");
  ASSERT_GE(T1.ChosenVersions.size(), 4u);
  EXPECT_EQ(distinctChoices(T1.ChosenVersions), 0u);
  EXPECT_GT(T1.HysteresisHolds, 0u);
}

TEST(PerturbHysteresisTest, GenuineImprovementStillSwitches) {
  // Version 1 becomes better by far more than the margin: hysteresis must
  // not pin a genuinely stale incumbent.
  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = millisToNanos(10);
  Config.TargetProductionNanos = millisToNanos(100);
  Config.SwitchHysteresis = 0.05;
  SyntheticRunner R(2, secondsToNanos(1), [](unsigned V, Nanos Now) {
    const bool Late = Now > millisToNanos(300);
    if (V == 0)
      return Late ? 0.6 : 0.1;
    return 0.25;
  });
  fb::FeedbackController C(Config);
  const fb::SectionExecutionTrace T = C.executeSection(R, "S");
  ASSERT_GE(T.ChosenVersions.size(), 2u);
  EXPECT_EQ(T.ChosenVersions.front(), 0u);
  EXPECT_EQ(T.ChosenVersions.back(), 1u);
}

// ---------------- Acceptance (c): no NaN/inf ever escapes -----------------

/// A runner that alternates real measurements with zero-duration
/// (degenerate) intervals -- the shape that previously injected fake
/// zero-overhead measurements into version selection.
class FlakyRunner : public SyntheticRunner {
public:
  FlakyRunner(unsigned NumVersions, Nanos TotalWork,
              std::function<double(unsigned, Nanos)> OverheadFn)
      : SyntheticRunner(NumVersions, TotalWork, std::move(OverheadFn)) {}

  IntervalReport runInterval(unsigned V, Nanos Target) override {
    if (++Calls % 3 == 0)
      return IntervalReport{}; // Zero duration, nothing consumed.
    return SyntheticRunner::runInterval(V, Target);
  }
  unsigned Calls = 0;
};

TEST(PerturbInvariantTest, DegenerateIntervalsAreDiscardedNotRecorded) {
  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = millisToNanos(10);
  Config.TargetProductionNanos = millisToNanos(100);
  FlakyRunner R(2, secondsToNanos(1), [](unsigned V, Nanos) {
    return V == 0 ? 0.1 : 0.5;
  });
  fb::FeedbackController C(Config);
  const fb::SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_GT(T.DegenerateIntervals, 0u);
  // Despite a third of all intervals being degenerate, the decision is
  // still right and every recorded sample is a finite valid overhead
  // (executeSection checked assertInvariants; re-check explicitly).
  T.assertInvariants();
  EXPECT_EQ(T.dominantVersion(), 0u);
  for (const Series &S : T.SampledOverheads.all())
    for (double V : S.Values) {
      EXPECT_TRUE(std::isfinite(V));
      EXPECT_GE(V, 0.0);
      EXPECT_LE(V, 1.0);
    }
}

TEST(PerturbInvariantTest, AllDegenerateSamplingFallsBackToLastGood) {
  // After 200 ms every interval is degenerate: the controller must ride the
  // last known-good version instead of asserting or spinning.
  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = millisToNanos(10);
  Config.TargetProductionNanos = millisToNanos(50);
  unsigned Calls = 0;
  class DyingRunner : public SyntheticRunner {
  public:
    using SyntheticRunner::SyntheticRunner;
    IntervalReport runInterval(unsigned V, Nanos Target) override {
      if (Clock > millisToNanos(200)) {
        // Degenerate from here on; drain a little work so the run ends.
        Remaining = Remaining > millisToNanos(20) ? Remaining - millisToNanos(20)
                                                  : 0;
        IntervalReport R;
        R.Finished = Remaining == 0;
        return R;
      }
      return SyntheticRunner::runInterval(V, Target);
    }
  };
  (void)Calls;
  DyingRunner R(2, secondsToNanos(1),
                [](unsigned V, Nanos) { return V == 1 ? 0.1 : 0.4; });
  fb::FeedbackController C(Config);
  const fb::SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_TRUE(R.done());
  EXPECT_GT(T.DegenerateIntervals, 0u);
  ASSERT_FALSE(T.ChosenVersions.empty());
  // Production decisions continue on the last measured best (version 1).
  EXPECT_EQ(T.ChosenVersions.back(), 1u);
}

TEST(PerturbInvariantDeathTest, TraceInvariantsCatchNaN) {
  fb::SectionExecutionTrace T;
  T.SampledOverheads.getOrCreate("v0").addPoint(
      0.0, std::numeric_limits<double>::quiet_NaN());
  EXPECT_DEATH(T.assertInvariants(), "sampled overhead");

  fb::SectionExecutionTrace U;
  U.SampledOverheads.getOrCreate("v0").addPoint(0.0, 2.0); // > 1.
  EXPECT_DEATH(U.assertInvariants(), "sampled overhead");

  fb::SectionExecutionTrace V;
  V.EndNanos = -1;
  EXPECT_DEATH(V.assertInvariants(), "end precedes start");
}

// --------------- Drift-triggered early resampling (robust knob) -----------

TEST(PerturbDriftTest, ProductionDriftCutsProductionShort) {
  // Version 0 is best until 200 ms, then collapses. With sliced production
  // and a drift threshold the controller resamples early and escapes; the
  // paper configuration (no slicing) rides the stale choice to the end of
  // the production budget.
  auto Overhead = [](unsigned V, Nanos Now) {
    if (V == 0)
      return Now > millisToNanos(200) ? 0.8 : 0.05;
    return 0.25;
  };

  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = millisToNanos(10);
  Config.TargetProductionNanos = secondsToNanos(2);
  Config.ProductionSliceNanos = millisToNanos(50);
  Config.DriftResampleThreshold = 0.2;
  SyntheticRunner R(2, secondsToNanos(1), Overhead);
  fb::FeedbackController C(Config);
  const fb::SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_GE(T.EarlyResamples, 1u);
  ASSERT_GE(T.ChosenVersions.size(), 2u);
  EXPECT_EQ(T.ChosenVersions.front(), 0u);
  EXPECT_EQ(T.ChosenVersions.back(), 1u);

  // Control: the unsliced paper configuration cannot react -- one production
  // phase swallows the whole run.
  fb::FeedbackConfig Paper;
  Paper.TargetSamplingNanos = millisToNanos(10);
  Paper.TargetProductionNanos = secondsToNanos(2);
  SyntheticRunner R2(2, secondsToNanos(1), Overhead);
  fb::FeedbackController C2(Paper);
  const fb::SectionExecutionTrace T2 = C2.executeSection(R2, "S");
  EXPECT_EQ(T2.EarlyResamples, 0u);
  EXPECT_EQ(distinctChoices(T2.ChosenVersions), 0u);
}

// ------------------- Robust aggregation of repeated samples ---------------

TEST(PerturbAggregationTest, MedianOfRepeatsShrugsOffOutliers) {
  EXPECT_DOUBLE_EQ(
      aggregateOverheads({0.1, 0.12, 0.9}, OverheadAggregation::Median), 0.12);
  EXPECT_DOUBLE_EQ(
      aggregateOverheads({0.1, 0.12, 0.9}, OverheadAggregation::Mean),
      (0.1 + 0.12 + 0.9) / 3.0);
  EXPECT_DOUBLE_EQ(aggregateOverheads({0.9, 0.1, 0.2, 0.3, 0.15},
                                      OverheadAggregation::TrimmedMean, 0.2),
                   (0.15 + 0.2 + 0.3) / 3.0);
  // Non-finite samples are discarded before aggregation.
  EXPECT_DOUBLE_EQ(
      aggregateOverheads({0.2, std::numeric_limits<double>::infinity()},
                         OverheadAggregation::Mean),
      0.2);
  // An empty (or fully discarded) sample set yields the NaN sentinel, never
  // 0.0: a nothing-was-measured aggregate must not pose as a perfect
  // zero-overhead measurement.
  EXPECT_TRUE(
      std::isnan(aggregateOverheads({}, OverheadAggregation::Median)));
  EXPECT_TRUE(std::isnan(
      aggregateOverheads({std::numeric_limits<double>::quiet_NaN(),
                          std::numeric_limits<double>::infinity()},
                         OverheadAggregation::Mean)));
}

TEST(PerturbAggregationTest, RepeatedSamplingWithMedianResistsSpikes) {
  // Version 0 is genuinely best (0.1) but every 3rd measurement of it
  // spikes to 0.9; version 1 is steady at 0.2. Single-sample mean sampling
  // can be fooled; 3 repeats with a median never is.
  unsigned Calls = 0;
  auto Spiky = [&Calls](unsigned V, Nanos) {
    if (V != 0)
      return 0.2;
    return ++Calls % 3 == 0 ? 0.9 : 0.1;
  };
  fb::FeedbackConfig Config;
  Config.TargetSamplingNanos = millisToNanos(5);
  Config.TargetProductionNanos = millisToNanos(100);
  Config.SamplingRepeats = 3;
  Config.SamplingAggregation = OverheadAggregation::Median;
  SyntheticRunner R(2, secondsToNanos(1), Spiky);
  fb::FeedbackController C(Config);
  const fb::SectionExecutionTrace T = C.executeSection(R, "S");
  ASSERT_FALSE(T.ChosenVersions.empty());
  for (unsigned V : T.ChosenVersions)
    EXPECT_EQ(V, 0u);
}

} // namespace
