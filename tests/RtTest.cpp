//===- tests/RtTest.cpp - Unit tests for the real-threads backend ---------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "rt/Barrier.h"
#include "rt/RealRunner.h"
#include "rt/SpinLock.h"
#include "rt/ThreadTeam.h"

#include <atomic>
#include <gtest/gtest.h>
#include <thread>
#include <vector>

using namespace dynfb::rt;

namespace {

TEST(SpinLockTest, TryAcquireAndRelease) {
  SpinLock L;
  EXPECT_FALSE(L.isHeld());
  EXPECT_TRUE(L.tryAcquire());
  EXPECT_TRUE(L.isHeld());
  EXPECT_FALSE(L.tryAcquire());
  L.release();
  EXPECT_FALSE(L.isHeld());
  EXPECT_TRUE(L.tryAcquire());
  L.release();
}

TEST(SpinLockTest, MutualExclusionUnderContention) {
  SpinLock L;
  int64_t Counter = 0; // Deliberately non-atomic: protected by L.
  constexpr int PerThread = 20000;
  constexpr int NumThreads = 4;
  std::vector<std::thread> Threads;
  for (int T = 0; T < NumThreads; ++T)
    Threads.emplace_back([&] {
      for (int I = 0; I < PerThread; ++I) {
        L.acquire();
        ++Counter;
        L.release();
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_EQ(Counter, int64_t(PerThread) * NumThreads);
}

TEST(BarrierTest, RoundsStayInLockstep) {
  constexpr unsigned N = 4;
  constexpr int Rounds = 50;
  Barrier B(N);
  std::atomic<int> Arrived{0};
  std::atomic<bool> Failed{false};
  std::vector<std::thread> Threads;
  for (unsigned T = 0; T < N; ++T)
    Threads.emplace_back([&] {
      for (int R = 0; R < Rounds; ++R) {
        Arrived.fetch_add(1);
        B.arriveAndWait();
        // After the barrier, every participant of this round has arrived.
        if (Arrived.load() < static_cast<int>(N) * (R + 1))
          Failed = true;
        B.arriveAndWait(); // Separate the check from the next arrival.
      }
    });
  for (auto &T : Threads)
    T.join();
  EXPECT_FALSE(Failed.load());
  EXPECT_EQ(Arrived.load(), static_cast<int>(N) * Rounds);
}

TEST(ThreadTeamTest, RunsJobOnAllWorkers) {
  ThreadTeam Team(4);
  std::vector<int> Hits(4, 0);
  Team.run([&](unsigned W) { Hits[W] = static_cast<int>(W) + 1; });
  for (unsigned W = 0; W < 4; ++W)
    EXPECT_EQ(Hits[W], static_cast<int>(W) + 1);
}

TEST(ThreadTeamTest, ReusableAcrossJobs) {
  ThreadTeam Team(3);
  std::atomic<int> Sum{0};
  for (int J = 0; J < 10; ++J)
    Team.run([&](unsigned) { Sum.fetch_add(1); });
  EXPECT_EQ(Sum.load(), 30);
}

TEST(ThreadTeamTest, SingleWorkerTeamRunsInline) {
  ThreadTeam Team(1);
  std::thread::id Caller = std::this_thread::get_id();
  std::thread::id Seen;
  Team.run([&](unsigned W) {
    EXPECT_EQ(W, 0u);
    Seen = std::this_thread::get_id();
  });
  EXPECT_EQ(Seen, Caller);
}

TEST(RealRunnerTest, CompletesAllIterations) {
  ThreadTeam Team(2);
  std::atomic<uint64_t> Done{0};
  std::vector<NativeVersion> Versions;
  Versions.push_back(NativeVersion{
      "only", [&](uint64_t, WorkerCtx &) { Done.fetch_add(1); }});
  RealSectionRunner Runner(Team, std::move(Versions), 100);
  const IntervalReport R =
      Runner.runInterval(0, secondsToNanos(30));
  EXPECT_TRUE(R.Finished);
  EXPECT_TRUE(Runner.done());
  EXPECT_EQ(Done.load(), 100u);
  EXPECT_GT(R.Stats.ExecNanos, 0);
}

TEST(RealRunnerTest, CountsLockPairsThroughWorkerCtx) {
  ThreadTeam Team(2);
  SpinLock L;
  std::vector<NativeVersion> Versions;
  Versions.push_back(NativeVersion{"only", [&](uint64_t, WorkerCtx &Ctx) {
                                     Ctx.acquire(L);
                                     Ctx.release(L);
                                   }});
  RealSectionRunner Runner(Team, std::move(Versions), 50);
  const IntervalReport R = Runner.runInterval(0, secondsToNanos(30));
  EXPECT_TRUE(R.Finished);
  EXPECT_EQ(R.Stats.AcquireReleasePairs, 50u);
}

TEST(RealRunnerTest, ResetAllowsRerun) {
  ThreadTeam Team(1);
  std::atomic<uint64_t> Done{0};
  std::vector<NativeVersion> Versions;
  Versions.push_back(NativeVersion{
      "only", [&](uint64_t, WorkerCtx &) { Done.fetch_add(1); }});
  RealSectionRunner Runner(Team, std::move(Versions), 10);
  Runner.runInterval(0, secondsToNanos(30));
  EXPECT_TRUE(Runner.done());
  Runner.reset();
  EXPECT_FALSE(Runner.done());
  Runner.runInterval(0, secondsToNanos(30));
  EXPECT_EQ(Done.load(), 20u);
}

TEST(RealRunnerTest, DeadlineStopsEarly) {
  ThreadTeam Team(1);
  std::vector<NativeVersion> Versions;
  Versions.push_back(NativeVersion{
      "only", [&](uint64_t, WorkerCtx &) {
        std::this_thread::sleep_for(std::chrono::milliseconds(2));
      }});
  RealSectionRunner Runner(Team, std::move(Versions), 1000000);
  const IntervalReport R = Runner.runInterval(0, millisToNanos(20));
  EXPECT_FALSE(R.Finished);
  EXPECT_FALSE(Runner.done());
  // The interval ended in bounded time (deadline + one iteration or so).
  EXPECT_LT(R.EffectiveNanos, millisToNanos(200));
}

TEST(SteadyNowTest, MonotonicallyIncreases) {
  const Nanos A = steadyNow();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));
  const Nanos B = steadyNow();
  EXPECT_GT(B, A);
}

} // namespace
