//===- tests/TheoryValidationTest.cpp - Executable check of Section 5 ------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Connects the theoretical analysis to an executable model: a synthetic
// two-policy environment follows the worst-case trajectories of the
// analysis (the selected policy's overhead rises as 1 + (v-1)e^{-at}, the
// other's falls as v e^{-at}), dynamic feedback runs one sampling phase
// (per the analysis: no useful work, S seconds per policy) and one
// production phase of length P, while the hypothetical optimal algorithm
// runs the good policy throughout and samples for free. Definition 1's
// epsilon bound must hold exactly for P inside the feasible region of
// Eq. 7 and fail outside it, and the measured work difference must equal
// the closed form of Eq. 6.
//
//===----------------------------------------------------------------------===//

#include "support/Integration.h"
#include "theory/Analysis.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::theory;

namespace {

/// Work performed by an algorithm running policy overhead function O over
/// [0, P], computed by numerical integration (independent of the closed
/// forms being validated).
double measuredWork(const std::function<double(double)> &Overhead,
                    double P) {
  return integrate([&](double T) { return 1.0 - Overhead(T); }, 0.0, P);
}

struct Scenario {
  double V;     ///< Tied sampled overhead.
  double Alpha; ///< Decay-rate bound (trajectories hit the bound).
  double S;     ///< Effective sampling interval.
  unsigned N;   ///< Number of policies.

  /// Work of worst-case dynamic feedback over S*N + P: nothing during
  /// sampling, then the deteriorating policy p0.
  double dynamicWork(double P) const {
    return measuredWork(
        [&](double T) { return worstCaseOverheadSelected(T, V, Alpha); }, P);
  }

  /// Work of the best-case optimal algorithm over S*N + P: the improving
  /// policy p1 for P, plus overhead-free execution for the S*N units.
  double optimalWork(double P) const {
    return S * static_cast<double>(N) +
           measuredWork(
               [&](double T) { return bestCaseOverheadOptimal(T, V, Alpha); },
               P);
  }
};

TEST(TheoryValidationTest, MeasuredDifferenceMatchesEquation6) {
  const Scenario Sc{0.4, 0.065, 1.0, 2};
  for (double P : {1.0, 5.0, 7.25, 15.0, 40.0}) {
    const double Measured = Sc.optimalWork(P) - Sc.dynamicWork(P);
    EXPECT_NEAR(Measured, workDifference(P, Sc.S, Sc.N, Sc.Alpha), 1e-6)
        << "P=" << P;
  }
}

TEST(TheoryValidationTest, MeasuredDifferenceIndependentOfTiedOverhead) {
  // Equation 6's striking property: v cancels.
  const double P = 9.0;
  const Scenario A{0.1, 0.065, 1.0, 2};
  const Scenario B{0.8, 0.065, 1.0, 2};
  EXPECT_NEAR(A.optimalWork(P) - A.dynamicWork(P),
              B.optimalWork(P) - B.dynamicWork(P), 1e-6);
}

TEST(TheoryValidationTest, EpsilonBoundHoldsExactlyOnFeasibleRegion) {
  const AnalysisParams Params = AnalysisParams::figure3Example();
  const Scenario Sc{0.5, Params.Alpha, Params.S, Params.N};
  const auto Region = feasibleRegion(Params);
  ASSERT_TRUE(Region.has_value());

  auto BoundHolds = [&](double P) {
    const double Span = P + Sc.S * static_cast<double>(Sc.N);
    const double Measured = Sc.optimalWork(P) - Sc.dynamicWork(P);
    return Measured <= Params.Epsilon * Span + 1e-9;
  };

  // Inside (several points, including both edges nudged inward).
  for (double P : {Region->first + 0.01, 0.5 * (Region->first +
                                                Region->second),
                   Region->second - 0.01})
    EXPECT_TRUE(BoundHolds(P)) << "P=" << P << " should satisfy the bound";
  // Outside on both sides.
  EXPECT_FALSE(BoundHolds(Region->first * 0.5));
  EXPECT_FALSE(BoundHolds(Region->second * 1.3));
}

TEST(TheoryValidationTest, EmpiricalOptimumMatchesEquation9) {
  // Scan P for the minimum measured per-unit-time difference and compare
  // with the analytic P_opt.
  const Scenario Sc{0.5, 0.065, 1.0, 2};
  const double POpt = optimalProductionInterval(Sc.S, Sc.N, Sc.Alpha);

  double BestP = 0, BestValue = std::numeric_limits<double>::infinity();
  for (double P = 0.5; P <= 40.0; P += 0.05) {
    const double Span = P + Sc.S * static_cast<double>(Sc.N);
    const double Value = (Sc.optimalWork(P) - Sc.dynamicWork(P)) / Span;
    if (Value < BestValue) {
      BestValue = Value;
      BestP = P;
    }
  }
  EXPECT_NEAR(BestP, POpt, 0.1);
  EXPECT_NEAR(BestP, 7.25, 0.2); // The paper's example value.
}

TEST(TheoryValidationTest, SlowerDecayTightensTheScrews) {
  // With a faster decay (larger alpha) the environment can change faster,
  // and the worst-case per-unit difference at the optimum grows.
  const double AtSlow =
      differencePerUnitTime(optimalProductionInterval(1.0, 2, 0.03), 1.0, 2,
                            0.03);
  const double AtFast =
      differencePerUnitTime(optimalProductionInterval(1.0, 2, 0.2), 1.0, 2,
                            0.2);
  EXPECT_LT(AtSlow, AtFast);
}

} // namespace
