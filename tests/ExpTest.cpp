//===- tests/ExpTest.cpp - Experiment orchestration tests ------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Covers the src/exp subsystem: cache-key stability (identical configs
// hash identically; any identity-bearing change moves the key), the
// fork-isolated scheduler (crash isolation, timeout, bounded retry,
// deterministic result ordering), the result-file round trip and the
// noise-aware regression gate.
//
//===----------------------------------------------------------------------===//

#include "exp/Cache.h"
#include "exp/Diff.h"
#include "exp/Result.h"
#include "exp/Scheduler.h"
#include "support/StringUtils.h"

#include "gtest/gtest.h"

#include <algorithm>
#include <cstdlib>
#include <set>
#include <unistd.h>

using namespace dynfb;
using namespace dynfb::exp;

namespace {

Experiment testExperiment() {
  Experiment E;
  E.Name = "test_experiment";
  E.Suite = "test";
  E.Description = "synthetic";
  E.MetricNames = {"seconds", "pairs"};
  return E;
}

JobConfig testConfig() {
  JobConfig C;
  C.set("app", "water");
  C.set("policy", "Bounded");
  C.setInt("procs", 8);
  C.setDouble("scale", 0.25);
  C.setInt("seed", 7);
  return C;
}

//===----------------------------------------------------------------------===//
// JobConfig canonical form
//===----------------------------------------------------------------------===//

TEST(JobConfig, CanonicalIsInsertionOrderIndependent) {
  JobConfig A = testConfig();
  JobConfig B;
  B.setInt("seed", 7);
  B.setDouble("scale", 0.25);
  B.setInt("procs", 8);
  B.set("policy", "Bounded");
  B.set("app", "water");
  EXPECT_EQ(A.canonical(), B.canonical());
  EXPECT_EQ(A, B);
}

TEST(JobConfig, DoubleValuesRoundTrip) {
  JobConfig C;
  C.setDouble("scale", 0.1); // Not exactly representable.
  EXPECT_DOUBLE_EQ(C.getDouble("scale", 0.0), 0.1);
  C.setDouble("x", 1.0 / 3.0);
  EXPECT_EQ(C.getDouble("x", 0.0), 1.0 / 3.0);
}

TEST(JobConfig, LabelUsesInsertionOrder) {
  JobConfig C;
  C.set("b", "2");
  C.set("a", "1");
  EXPECT_EQ(C.label(), "b=2,a=1");
}

//===----------------------------------------------------------------------===//
// Cache keys
//===----------------------------------------------------------------------===//

TEST(CacheKey, IdenticalInputsHashEqual) {
  const Experiment E = testExperiment();
  const CacheKey K1 = makeCacheKey(E, testConfig(), "build1");
  const CacheKey K2 = makeCacheKey(E, testConfig(), "build1");
  EXPECT_EQ(K1.Hash, K2.Hash);
  EXPECT_EQ(K1.hex(), K2.hex());
  EXPECT_EQ(K1.hex().size(), 16u);
}

TEST(CacheKey, AnyIdentityChangeMovesTheKey) {
  const Experiment E = testExperiment();
  const uint64_t Base = makeCacheKey(E, testConfig(), "build1").Hash;

  JobConfig Seeded = testConfig();
  Seeded.setInt("seed", 8);
  EXPECT_NE(makeCacheKey(E, Seeded, "build1").Hash, Base);

  JobConfig Scaled = testConfig();
  Scaled.setDouble("scale", 0.5);
  EXPECT_NE(makeCacheKey(E, Scaled, "build1").Hash, Base);

  JobConfig Policy = testConfig();
  Policy.set("policy", "Aggressive");
  EXPECT_NE(makeCacheKey(E, Policy, "build1").Hash, Base);

  // Metric schema change (a rename) moves every key of the experiment.
  Experiment Renamed = testExperiment();
  Renamed.MetricNames = {"seconds", "lock_pairs"};
  EXPECT_NE(makeCacheKey(Renamed, testConfig(), "build1").Hash, Base);

  // A different experiment name is a different key space.
  Experiment Other = testExperiment();
  Other.Name = "other_experiment";
  EXPECT_NE(makeCacheKey(Other, testConfig(), "build1").Hash, Base);

  // A new build invalidates everything.
  EXPECT_NE(makeCacheKey(E, testConfig(), "build2").Hash, Base);
}

TEST(CacheKey, StoreAndLoadRoundTrip) {
  char Template[] = "/tmp/dynfb-cache-XXXXXX";
  ASSERT_NE(mkdtemp(Template), nullptr);
  const ResultCache Cache(Template);
  const Experiment E = testExperiment();
  const CacheKey Key = makeCacheKey(E, testConfig(), "build1");

  EXPECT_FALSE(Cache.load(Key).has_value()); // Cold.

  JobResult R;
  R.add("seconds", 12.5);
  R.add("pairs", 1048576.0);
  std::string Error;
  ASSERT_TRUE(Cache.store(Key, E, testConfig(), "build1", R, Error)) << Error;

  const std::optional<JobResult> Loaded = Cache.load(Key);
  ASSERT_TRUE(Loaded.has_value());
  EXPECT_TRUE(Loaded->Ok);
  EXPECT_EQ(Loaded->metric("seconds"), 12.5);
  EXPECT_EQ(Loaded->metric("pairs"), 1048576.0);

  // A different key is still a miss.
  const CacheKey Other = makeCacheKey(E, testConfig(), "build2");
  EXPECT_FALSE(Cache.load(Other).has_value());
}

//===----------------------------------------------------------------------===//
// Scheduler
//===----------------------------------------------------------------------===//

SchedulerOptions twoWorkers() {
  SchedulerOptions Opts;
  Opts.Workers = 2;
  return Opts;
}

TEST(Scheduler, RunsJobsAndPreservesOrder) {
  const std::vector<JobOutcome> Outcomes = runJobs(
      8,
      [](size_t Job, unsigned) {
        JobResult R;
        R.add("value", static_cast<double>(Job) * 10.0);
        return R;
      },
      twoWorkers());
  ASSERT_EQ(Outcomes.size(), 8u);
  for (size_t I = 0; I < Outcomes.size(); ++I) {
    EXPECT_TRUE(Outcomes[I].ok()) << "job " << I;
    EXPECT_EQ(Outcomes[I].Result.metric("value"),
              static_cast<double>(I) * 10.0);
  }
}

TEST(Scheduler, CrashingJobDoesNotKillTheSweep) {
  const std::vector<JobOutcome> Outcomes = runJobs(
      4,
      [](size_t Job, unsigned) {
        if (Job == 1)
          std::abort(); // Dies in the child; the parent must survive.
        JobResult R;
        R.add("value", 1.0);
        return R;
      },
      twoWorkers());
  ASSERT_EQ(Outcomes.size(), 4u);
  EXPECT_EQ(Outcomes[1].Status, JobStatus::Crashed);
  for (size_t I : {0u, 2u, 3u}) {
    EXPECT_EQ(Outcomes[I].Status, JobStatus::Ok) << "job " << I;
    EXPECT_EQ(Outcomes[I].Result.metric("value"), 1.0);
  }
}

TEST(Scheduler, TimeoutKillsOverrunningJobs) {
  SchedulerOptions Opts = twoWorkers();
  Opts.TimeoutSeconds = 0.2;
  const std::vector<JobOutcome> Outcomes = runJobs(
      2,
      [](size_t Job, unsigned) {
        if (Job == 0)
          ::sleep(60); // Must be SIGKILLed, not waited for.
        JobResult R;
        R.add("value", 1.0);
        return R;
      },
      Opts);
  ASSERT_EQ(Outcomes.size(), 2u);
  EXPECT_EQ(Outcomes[0].Status, JobStatus::TimedOut);
  EXPECT_EQ(Outcomes[1].Status, JobStatus::Ok);
}

TEST(Scheduler, BoundedRetrySucceedsOnSecondAttempt) {
  SchedulerOptions Opts = twoWorkers();
  Opts.Retries = 2;
  const std::vector<JobOutcome> Outcomes = runJobs(
      1,
      [](size_t, unsigned Attempt) {
        if (Attempt == 0)
          std::abort(); // First attempt crashes, retry succeeds.
        JobResult R;
        R.add("attempt", static_cast<double>(Attempt));
        return R;
      },
      Opts);
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_EQ(Outcomes[0].Status, JobStatus::Ok);
  EXPECT_EQ(Outcomes[0].Attempts, 2u);
  EXPECT_EQ(Outcomes[0].Result.metric("attempt"), 1.0);
}

TEST(Scheduler, RetriesAreBounded) {
  SchedulerOptions Opts = twoWorkers();
  Opts.Retries = 1;
  const std::vector<JobOutcome> Outcomes =
      runJobs(1, [](size_t, unsigned) -> JobResult { std::abort(); }, Opts);
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_EQ(Outcomes[0].Status, JobStatus::Crashed);
  EXPECT_EQ(Outcomes[0].Attempts, 2u); // Initial attempt + 1 retry.
}

TEST(Scheduler, CrashReportNamesSignalAndQuotesStderr) {
  const std::vector<JobOutcome> Outcomes = runJobs(
      1,
      [](size_t, unsigned) -> JobResult {
        std::fprintf(stderr, "first diagnostic line\n");
        std::fprintf(stderr, "frobnication failed: shard 7 poisoned\n");
        std::abort();
      },
      twoWorkers());
  ASSERT_EQ(Outcomes.size(), 1u);
  ASSERT_EQ(Outcomes[0].Status, JobStatus::Crashed);
  const std::string &Error = Outcomes[0].Result.Error;
  // The signal is named, not just numbered ...
  EXPECT_NE(Error.find("signal 6"), std::string::npos) << Error;
  EXPECT_NE(Error.find("Abort"), std::string::npos) << Error;
  // ... and the report quotes the child's final stderr output.
  EXPECT_NE(Error.find("last stderr output:"), std::string::npos) << Error;
  EXPECT_NE(Error.find("shard 7 poisoned"), std::string::npos) << Error;
}

TEST(Scheduler, CrashReportKeepsOnlyTheStderrTail) {
  const std::vector<JobOutcome> Outcomes = runJobs(
      1,
      [](size_t, unsigned) -> JobResult {
        for (int I = 0; I < 100; ++I)
          std::fprintf(stderr, "line %d\n", I);
        std::abort();
      },
      twoWorkers());
  ASSERT_EQ(Outcomes.size(), 1u);
  ASSERT_EQ(Outcomes[0].Status, JobStatus::Crashed);
  const std::string &Error = Outcomes[0].Result.Error;
  // Last ~20 lines survive; the beginning is dropped.
  EXPECT_NE(Error.find("line 99"), std::string::npos) << Error;
  EXPECT_NE(Error.find("line 80"), std::string::npos) << Error;
  EXPECT_EQ(Error.find("line 79\n"), std::string::npos) << Error;
  EXPECT_EQ(Error.find("line 0\n"), std::string::npos) << Error;
}

TEST(Scheduler, JobLevelFailureIsReportedNotRetried) {
  SchedulerOptions Opts = twoWorkers();
  Opts.Retries = 3;
  const std::vector<JobOutcome> Outcomes = runJobs(
      1,
      [](size_t, unsigned) {
        JobResult R;
        R.Ok = false;
        R.Error = "bad config";
        return R;
      },
      Opts);
  ASSERT_EQ(Outcomes.size(), 1u);
  EXPECT_EQ(Outcomes[0].Status, JobStatus::Failed);
  EXPECT_EQ(Outcomes[0].Attempts, 1u); // Deterministic failure: no retry.
  EXPECT_EQ(Outcomes[0].Result.Error, "bad config");
}

TEST(Scheduler, JobResultJsonRoundTrip) {
  JobResult R;
  R.add("seconds", 1.0 / 3.0);
  R.add("pairs", 123456.0);
  JobResult Back;
  std::string Error;
  ASSERT_TRUE(jobResultFromJson(jobResultToJson(R), Back, Error)) << Error;
  EXPECT_TRUE(Back.Ok);
  EXPECT_EQ(Back.metric("seconds"), 1.0 / 3.0);
  EXPECT_EQ(Back.metric("pairs"), 123456.0);

  JobResult Fail;
  Fail.Ok = false;
  Fail.Error = "with \"quotes\" and\nnewline";
  ASSERT_TRUE(jobResultFromJson(jobResultToJson(Fail), Back, Error)) << Error;
  EXPECT_FALSE(Back.Ok);
  EXPECT_EQ(Back.Error, Fail.Error);
}

//===----------------------------------------------------------------------===//
// Registry
//===----------------------------------------------------------------------===//

TEST(Registry, BuiltinExperimentsRegisterOnce) {
  registerBuiltinExperiments();
  registerBuiltinExperiments(); // Idempotent.
  ASSERT_NE(registry().find("table2_fig4_barnes_hut"), nullptr);
  ASSERT_NE(registry().find("table7_fig6_water"), nullptr);
  ASSERT_NE(registry().find("version_space"), nullptr);
  ASSERT_NE(registry().find("perturbation_adaptivity"), nullptr);
  EXPECT_EQ(registry().find("no_such_experiment"), nullptr);

  EXPECT_EQ(registry().suite("paper").size(), 4u);
  EXPECT_GE(registry().suite("all").size(), 6u);
}

TEST(Registry, EveryJobCarriesItsMachine) {
  registerBuiltinExperiments();
  RunOptions Opts;
  Opts.Scale = 0.125;
  Opts.Machine = "dash-numa";
  for (const Experiment *E : registry().suite("all")) {
    const std::vector<JobConfig> Jobs = E->MakeJobs(Opts);
    ASSERT_FALSE(Jobs.empty()) << E->Name;
    for (const JobConfig &C : Jobs) {
      EXPECT_FALSE(C.getString("machine").empty()) << E->Name;
      // The full parameter set rides along, so a model whose defaults ever
      // change can never alias an old cache entry.
      EXPECT_NE(C.getString("machine_params").find("AcquireNanos="),
                std::string::npos)
          << E->Name;
    }
  }
}

TEST(Registry, SimThroughputCoversAppsAndProcCounts) {
  registerBuiltinExperiments();
  const Experiment *E = registry().find("sim_throughput");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Suite, "perf");
  for (const char *Metric :
       {"micro_ops", "wall_seconds", "mops_per_sec", "intervals_per_sec"})
    EXPECT_TRUE(std::find(E->MetricNames.begin(), E->MetricNames.end(),
                          Metric) != E->MetricNames.end())
        << Metric;

  RunOptions Opts;
  const std::vector<JobConfig> Jobs = E->MakeJobs(Opts);
  // 4 apps x {2, 8} simulated processors, all dynamic feedback.
  ASSERT_EQ(Jobs.size(), 8u);
  std::set<std::string> Apps;
  std::set<int64_t> Procs;
  for (const JobConfig &C : Jobs) {
    Apps.insert(C.getString("app"));
    Procs.insert(C.getInt("procs"));
    EXPECT_EQ(C.getString("flavour"), "dynamic");
  }
  EXPECT_EQ(Apps.size(), 4u);
  EXPECT_TRUE(Apps.count("barnes_hut"));
  EXPECT_TRUE(Apps.count("kvserve"));
  EXPECT_EQ(Procs, (std::set<int64_t>{2, 8}));

  // The --procs filter narrows the grid.
  Opts.Procs = 2;
  EXPECT_EQ(E->MakeJobs(Opts).size(), 4u);
}

TEST(Registry, MachineSensitivitySweepsEveryModel) {
  registerBuiltinExperiments();
  const Experiment *E = registry().find("machine_sensitivity");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Suite, "extension");
  RunOptions Opts;
  Opts.Machine = "uma-cheaplock"; // Ignored: the machine is the swept axis.
  const std::vector<JobConfig> Jobs = E->MakeJobs(Opts);
  // 3 machines x (3 fixed policies + dynamic).
  ASSERT_EQ(Jobs.size(), 12u);
  std::set<std::string> Machines;
  for (const JobConfig &C : Jobs)
    Machines.insert(C.getString("machine"));
  EXPECT_EQ(Machines.size(), 3u);
  EXPECT_TRUE(Machines.count("dash-flat"));
  EXPECT_TRUE(Machines.count("dash-numa"));
  EXPECT_TRUE(Machines.count("uma-cheaplock"));
}

TEST(Registry, ServingSweepsMachinesAndMixes) {
  registerBuiltinExperiments();
  const Experiment *E = registry().find("serving");
  ASSERT_NE(E, nullptr);
  EXPECT_EQ(E->Suite, "extension");
  RunOptions Opts;
  Opts.Machine = "uma-cheaplock"; // Ignored: the machine is a swept axis.
  const std::vector<JobConfig> Jobs = E->MakeJobs(Opts);
  // 3 machines x 3 mixes x (3 fixed policies + dynamic).
  ASSERT_EQ(Jobs.size(), 36u);
  std::set<std::string> Machines, Mixes;
  for (const JobConfig &C : Jobs) {
    Machines.insert(C.getString("machine"));
    Mixes.insert(C.getString("mix"));
    EXPECT_FALSE(C.getString("traffic").empty()) << C.label();
  }
  EXPECT_EQ(Machines.size(), 3u);
  EXPECT_EQ(Mixes, (std::set<std::string>{"steady", "diurnal", "storm"}));
}

TEST(Registry, ServingDynamicJobEmitsRegretMaterial) {
  registerBuiltinExperiments();
  const Experiment *E = registry().find("serving");
  ASSERT_NE(E, nullptr);
  RunOptions Opts;
  Opts.Scale = 0.125;
  const std::vector<JobConfig> Jobs = E->MakeJobs(Opts);
  // Last job of the first (machine, mix) cell is the dynamic variant.
  const JobConfig &Dyn = Jobs[3];
  ASSERT_EQ(Dyn.getString("variant"), "dynamic");
  const JobResult R = E->RunJob(Dyn);
  ASSERT_TRUE(R.Ok) << R.Error;
  EXPECT_GT(R.metric("seconds"), 0.0);
  // One duration metric per traffic window, the oracle's raw material ...
  for (unsigned W = 0; W < 8; ++W)
    EXPECT_GT(R.metric(format("w%u_seconds", W)), 0.0) << W;
  // ... and the resilience counters (present even when zero).
  EXPECT_TRUE(R.hasMetric("quarantines"));
  EXPECT_TRUE(R.hasMetric("watchdog_resamples"));
  EXPECT_TRUE(R.hasMetric("degraded_phases"));
}

TEST(Registry, GridsAreDeterministic) {
  registerBuiltinExperiments();
  const Experiment *E = registry().find("table2_fig4_barnes_hut");
  ASSERT_NE(E, nullptr);
  RunOptions Opts;
  Opts.Scale = 0.125;
  const std::vector<JobConfig> A = E->MakeJobs(Opts);
  const std::vector<JobConfig> B = E->MakeJobs(Opts);
  ASSERT_EQ(A.size(), B.size());
  // 1 serial + 3 policies x 6 counts + dynamic x 6 counts.
  EXPECT_EQ(A.size(), 25u);
  for (size_t I = 0; I < A.size(); ++I)
    EXPECT_EQ(A[I].canonical(), B[I].canonical());
}

//===----------------------------------------------------------------------===//
// Result files and the regression gate
//===----------------------------------------------------------------------===//

ResultFile smallResultFile() {
  ResultFile F;
  F.Build = "buildX";
  F.Suite = "paper";
  F.ScaleFactor = 0.25;
  F.Seed = 3;
  F.Machine = "uma-cheaplock";

  JobRecord R1;
  R1.Experiment = "exp_a";
  R1.Config.set("app", "water");
  R1.Config.setInt("procs", 8);
  R1.Result.add("seconds", 10.0);
  R1.Result.add("pairs", 1000.0);
  R1.WallSeconds = 0.5;
  F.Jobs.push_back(R1);

  JobRecord R2;
  R2.Experiment = "exp_a";
  R2.Config.set("app", "water");
  R2.Config.setInt("procs", 16);
  R2.Result.add("seconds", 6.0);
  R2.FromCache = true;
  F.Jobs.push_back(R2);
  return F;
}

TEST(ResultFile, JsonRoundTrip) {
  const ResultFile F = smallResultFile();
  std::string Error;
  const std::optional<ResultFile> Back = parseResultFile(toJson(F), Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->Build, "buildX");
  EXPECT_EQ(Back->Suite, "paper");
  EXPECT_EQ(Back->ScaleFactor, 0.25);
  EXPECT_EQ(Back->Seed, 3u);
  EXPECT_EQ(Back->Machine, "uma-cheaplock");
  ASSERT_EQ(Back->Jobs.size(), 2u);
  EXPECT_EQ(Back->Jobs[0].key(), F.Jobs[0].key());
  EXPECT_EQ(Back->Jobs[0].Result.metric("seconds"), 10.0);
  EXPECT_EQ(Back->Jobs[1].FromCache, true);
  EXPECT_EQ(Back->cachedJobs(), 1u);
  EXPECT_EQ(Back->failedJobs(), 0u);
}

TEST(ResultFile, RejectsUnsupportedSchema) {
  std::string Text = toJson(smallResultFile());
  const size_t Pos = Text.find("\"schema\":3");
  ASSERT_NE(Pos, std::string::npos);
  Text.replace(Pos, 10, "\"schema\":9");
  std::string Error;
  EXPECT_FALSE(parseResultFile(Text, Error).has_value());
  EXPECT_NE(Error.find("schema"), std::string::npos);
}

// v2 result files (no backend field) stay readable: the checked-in sim
// baselines predate the backend axis, and diffing against them must keep
// working.
TEST(ResultFile, AcceptsPreviousSchemaWithSimDefault) {
  std::string Text = toJson(smallResultFile());
  const size_t Pos = Text.find("\"schema\":3");
  ASSERT_NE(Pos, std::string::npos);
  Text.replace(Pos, 10, "\"schema\":2");
  const size_t BackendPos = Text.find(",\"backend\":\"sim\"");
  ASSERT_NE(BackendPos, std::string::npos);
  Text.erase(BackendPos, std::string(",\"backend\":\"sim\"").size());
  std::string Error;
  const std::optional<ResultFile> Back = parseResultFile(Text, Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->Schema, 2);
  EXPECT_EQ(Back->Backend, "sim");
  ASSERT_EQ(Back->Jobs.size(), 2u);
}

// The backend round-trips through the v3 header.
TEST(ResultFile, BackendRoundTrip) {
  ResultFile F = smallResultFile();
  F.Backend = "native";
  std::string Error;
  const std::optional<ResultFile> Back = parseResultFile(toJson(F), Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(Back->Backend, "native");
}

TEST(Diff, IdenticalFilesPass) {
  const ResultFile F = smallResultFile();
  const DiffReport Report = diffResults(F, F, {});
  EXPECT_EQ(Report.Regressions, 0u);
  EXPECT_EQ(Report.Compared, 3u);
  EXPECT_TRUE(Report.ok({}));
}

TEST(Diff, InjectedRegressionFailsTheGate) {
  const ResultFile Base = smallResultFile();
  ResultFile Cand = Base;
  Cand.Jobs[0].Result.Metrics[0].Value = 11.0; // +10% on seconds.
  DiffOptions Opts;
  Opts.RelTol = 0.05;
  const DiffReport Report = diffResults(Base, Cand, Opts);
  EXPECT_EQ(Report.Regressions, 1u);
  EXPECT_FALSE(Report.ok(Opts));
  EXPECT_NE(Report.renderText(Opts).find("REGRESSION"), std::string::npos);
  EXPECT_NE(Report.renderText(Opts).find("gate: FAIL"), std::string::npos);

  // The same delta passes under a per-metric override.
  Opts.SuffixRelTol.emplace_back("seconds", 0.15);
  EXPECT_TRUE(diffResults(Base, Cand, Opts).ok(Opts));
}

TEST(Diff, ImprovementIsNotARegression) {
  const ResultFile Base = smallResultFile();
  ResultFile Cand = Base;
  Cand.Jobs[0].Result.Metrics[0].Value = 8.0; // 20% faster.
  const DiffReport Report = diffResults(Base, Cand, {});
  EXPECT_EQ(Report.Regressions, 0u);
  EXPECT_EQ(Report.Improvements, 1u);
  EXPECT_TRUE(Report.ok({}));
}

TEST(Diff, OkMetricsGateOnDecrease) {
  ResultFile Base = smallResultFile();
  Base.Jobs[0].Result.add("within_10pct.ok", 1.0);
  ResultFile Cand = Base;
  Cand.Jobs[0].Result.metric("within_10pct.ok"); // Keep value: passes.
  EXPECT_TRUE(diffResults(Base, Cand, {}).ok({}));

  Cand.Jobs[0].Result.Metrics.back().Value = 0.0; // Acceptance flag drops.
  const DiffReport Report = diffResults(Base, Cand, {});
  EXPECT_EQ(Report.Regressions, 1u);
  EXPECT_FALSE(Report.ok({}));
}

TEST(Diff, MissingJobsAndFailedJobsGate) {
  const ResultFile Base = smallResultFile();
  ResultFile Dropped = Base;
  Dropped.Jobs.pop_back();
  DiffOptions Strict;
  EXPECT_FALSE(diffResults(Base, Dropped, Strict).ok(Strict));
  DiffOptions Loose;
  Loose.FailOnMissing = false;
  EXPECT_TRUE(diffResults(Base, Dropped, Loose).ok(Loose));

  ResultFile Failed = Base;
  Failed.Jobs[1].Status = JobStatus::Crashed;
  EXPECT_FALSE(diffResults(Base, Failed, Loose).ok(Loose));
}

} // namespace
