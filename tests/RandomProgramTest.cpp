//===- tests/RandomProgramTest.cpp - Property tests over random programs ---==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Generates random well-formed, commuting object-based programs and checks
// the invariants every synchronization transformation must preserve, for
// every policy, across the whole pipeline (generation -> optimization ->
// lowering -> simulation):
//   - the verifier accepts every generated version, including
//     interprocedural update atomicity;
//   - versions perform identical useful work (compute time per iteration);
//   - lock pairs are monotone: Aggressive <= Bounded <= Original;
//   - one-processor execution time is monotone the same way;
//   - the simulator is deterministic and deadlock-free at any processor
//     count.
//
//===----------------------------------------------------------------------===//

#include "analysis/Commutativity.h"
#include "fb/Controller.h"
#include "ir/Builder.h"
#include "ir/Clone.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/StructuralHash.h"
#include "ir/Verifier.h"
#include "rt/Evaluator.h"
#include "rt/Interp.h"
#include "sim/SectionSim.h"
#include "support/Random.h"
#include "xform/LockElimination.h"
#include "xform/MultiVersion.h"
#include "xform/Synchronizer.h"

#include <gtest/gtest.h>
#include <limits>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::xform;

namespace {

/// A random program: one module with one parallel section, built so that it
/// is well-formed and its operations commute by construction. Classes
/// split their fields into read-only fields (appearing in expressions) and
/// accumulator fields (each with one fixed commuting operator).
class ProgramGenerator {
public:
  explicit ProgramGenerator(uint64_t Seed) : R(Seed), M("random") {}

  Module &module() { return M; }

  const Method *generate() {
    // Classes.
    const unsigned NumClasses = 1 + R.nextBelow(2);
    for (unsigned C = 0; C < NumClasses; ++C) {
      ClassDecl *Cls = M.createClass("c" + std::to_string(C));
      ClassInfo Info;
      Info.Cls = Cls;
      const unsigned ReadOnly = 1 + R.nextBelow(2);
      for (unsigned F = 0; F < ReadOnly; ++F)
        Info.ReadOnlyFields.push_back(
            Cls->addField("ro" + std::to_string(F)));
      const unsigned Accums = 1 + R.nextBelow(3);
      for (unsigned F = 0; F < Accums; ++F) {
        Info.AccumFields.push_back(
            Cls->addField("acc" + std::to_string(F)));
        Info.AccumOps.push_back(R.nextBelow(2) ? BinOp::Add : BinOp::Mul);
      }
      Classes.push_back(Info);
    }

    // A few leaf methods per class: straight-line compute + updates.
    for (ClassInfo &Info : Classes) {
      const unsigned NumLeaves = 1 + R.nextBelow(2);
      for (unsigned L = 0; L < NumLeaves; ++L) {
        Method *Leaf =
            M.createMethod("leaf" + std::to_string(Leaves.size()), Info.Cls);
        // Optionally one single-object parameter of some class.
        const bool HasParam = R.nextBelow(2) == 0;
        const ClassInfo *ParamCls = nullptr;
        if (HasParam) {
          ParamCls = &Classes[R.nextBelow(Classes.size())];
          Leaf->addParam(Param{"p", ParamCls->Cls, false});
        }
        MethodBuilder B(M, Leaf);
        emitStraightLine(B, Info, ParamCls, 1 + R.nextBelow(4));
        Leaves.push_back(Leaf);
      }
    }

    // The entry method: owner = class 0, one object-array parameter per
    // class, body with loops calling leaves / doing updates.
    const ClassInfo &EntryCls = Classes[0];
    Method *Entry = M.createMethod("entry", EntryCls.Cls);
    for (unsigned C = 0; C < Classes.size(); ++C)
      Entry->addParam(Param{"arr" + std::to_string(C), Classes[C].Cls,
                            /*IsArray=*/true});
    {
      MethodBuilder B(M, Entry);
      const unsigned Blocks = 1 + R.nextBelow(3);
      for (unsigned Blk = 0; Blk < Blocks; ++Blk)
        emitBlock(B, EntryCls, Entry, 0);
    }
    M.addSection("S", Entry);
    return Entry;
  }

private:
  struct ClassInfo {
    ClassDecl *Cls = nullptr;
    std::vector<unsigned> ReadOnlyFields;
    std::vector<unsigned> AccumFields;
    std::vector<BinOp> AccumOps;
  };

  const Expr *someValueExpr(const ClassInfo &Ctx) {
    if (R.nextBelow(2) == 0)
      return M.exprConst(1.0 + static_cast<double>(R.nextBelow(7)));
    return M.exprFieldRead(
        Receiver::thisObj(),
        Ctx.ReadOnlyFields[R.nextBelow(Ctx.ReadOnlyFields.size())]);
  }

  /// Straight-line mix of computes and commuting updates on `this` (and
  /// optionally on a single-object parameter).
  void emitStraightLine(MethodBuilder &B, const ClassInfo &Own,
                        const ClassInfo *ParamCls, unsigned Len) {
    for (unsigned I = 0; I < Len; ++I) {
      const unsigned Kind = static_cast<unsigned>(R.nextBelow(3));
      if (Kind == 0) {
        B.compute();
        continue;
      }
      if (Kind == 2 && ParamCls) {
        const size_t F = R.nextBelow(ParamCls->AccumFields.size());
        B.update(Receiver::param(0), ParamCls->AccumFields[F],
                 ParamCls->AccumOps[F], someValueExpr(Own));
        continue;
      }
      const size_t F = R.nextBelow(Own.AccumFields.size());
      B.update(Receiver::thisObj(), Own.AccumFields[F], Own.AccumOps[F],
               someValueExpr(Own));
    }
  }

  /// A block in the entry method: either straight-line work on `this`, a
  /// loop over updates/calls, or a nested loop (depth-limited).
  void emitBlock(MethodBuilder &B, const ClassInfo &Own, Method *Entry,
                 unsigned Depth) {
    const unsigned Kind = static_cast<unsigned>(R.nextBelow(3));
    if (Kind == 0 || Depth >= 2) {
      emitStraightLine(B, Own, nullptr, 1 + R.nextBelow(3));
      return;
    }
    const unsigned LoopId = B.beginLoop();
    const unsigned Inner = static_cast<unsigned>(R.nextBelow(4));
    switch (Inner) {
    case 0: {
      // Updates of array elements selected by this loop.
      const unsigned C = static_cast<unsigned>(R.nextBelow(Classes.size()));
      const ClassInfo &Target = Classes[C];
      const size_t F = R.nextBelow(Target.AccumFields.size());
      B.compute();
      B.update(Receiver::paramIndexed(C, LoopId), Target.AccumFields[F],
               Target.AccumOps[F], M.exprConst(2.0));
      break;
    }
    case 1: {
      // A call to a leaf method on `this` (if classes match) or on an
      // array element of the leaf's class.
      const Method *Leaf = Leaves[R.nextBelow(Leaves.size())];
      const unsigned OwnerIdx = classIndexOf(Leaf->owner());
      const Receiver Recv = Leaf->owner() == Entry->owner()
                                ? Receiver::thisObj()
                                : Receiver::paramIndexed(OwnerIdx, LoopId);
      std::vector<Receiver> Args;
      if (!Leaf->params().empty() && Leaf->param(0).isObject())
        Args.push_back(Receiver::paramIndexed(
            classIndexOf(Leaf->param(0).ObjClass), LoopId));
      B.call(Leaf, Recv, std::move(Args));
      break;
    }
    case 2:
      // Nested block.
      emitBlock(B, Own, Entry, Depth + 1);
      break;
    default:
      // Updates of `this` inside the loop (liftable-receiver shape).
      B.compute();
      emitStraightLine(B, Own, nullptr, 1 + R.nextBelow(2));
      break;
    }
    B.endLoop();
  }

  unsigned classIndexOf(const ClassDecl *Cls) const {
    for (unsigned I = 0; I < Classes.size(); ++I)
      if (Classes[I].Cls == Cls)
        return I;
    ADD_FAILURE() << "unknown class";
    return 0;
  }

  Rng R;
  Module M;
  std::vector<ClassInfo> Classes;
  std::vector<const Method *> Leaves;
};

/// Generic binding for random programs: hash-derived trip counts and
/// compute costs, object ids partitioned by nothing (locks only).
class RandomBinding final : public rt::DataBinding {
public:
  explicit RandomBinding(uint64_t Seed) : Seed(Seed) {}

  uint64_t iterationCount() const override { return 6; }
  uint32_t objectCount() const override { return 64; }
  rt::ObjectId thisObject(uint64_t Iter) const override {
    return static_cast<rt::ObjectId>(Iter);
  }
  std::vector<rt::ObjRef> sectionArgs(uint64_t) const override {
    // One array handle per possible array param; handles are their index.
    return {rt::ObjRef::array(0), rt::ObjRef::array(1),
            rt::ObjRef::array(2)};
  }
  rt::ObjectId elementOf(rt::ArrayId Arr, uint64_t Index,
                         const rt::LoopCtx &Ctx) const override {
    SplitMix64 H(Seed ^ (Arr * 911ULL) ^ (Index * 31ULL) ^
                 (Ctx.Iter * 7ULL));
    return static_cast<rt::ObjectId>(H.next() % objectCount());
  }
  uint64_t tripCount(unsigned LoopId, const rt::LoopCtx &Ctx) const override {
    SplitMix64 H(Seed ^ (LoopId * 131ULL) ^ (Ctx.Iter * 17ULL));
    return 1 + H.next() % 4;
  }
  rt::Nanos computeNanos(unsigned CC, const rt::LoopCtx &Ctx) const override {
    SplitMix64 H(Seed ^ (CC * 1009ULL) ^ (Ctx.Iter * 3ULL));
    return 500 + static_cast<rt::Nanos>(H.next() % 5000);
  }

private:
  const uint64_t Seed;
};

class RandomProgramTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(RandomProgramTest, PipelineInvariants) {
  const uint64_t Seed = GetParam();
  ProgramGenerator Gen(Seed);
  const Method *Entry = Gen.generate();
  Module &M = Gen.module();

  // The author form is well-formed and commutes by construction.
  ASSERT_TRUE(verifyModule(M).empty()) << "seed " << Seed;
  ASSERT_TRUE(analysis::analyzeEntry(*Entry).Commutes) << "seed " << Seed;

  // Textual round-trip: print -> parse -> print is a fixed point and the
  // reparsed entry is structurally identical.
  {
    const std::string Printed = printModule(M);
    const ParseResult Parsed = parseModule(Printed);
    ASSERT_TRUE(Parsed.ok()) << "seed " << Seed << ": " << Parsed.Error;
    EXPECT_EQ(printModule(*Parsed.M), Printed) << "seed " << Seed;
    const Method *ReEntry = Parsed.M->findMethod(Entry->name());
    ASSERT_NE(ReEntry, nullptr) << "seed " << Seed;
    EXPECT_TRUE(structurallyEqual(*Entry, *ReEntry)) << "seed " << Seed;
  }

  // Generate all versions (internally verifies structure + atomicity; a
  // failure aborts, which the test harness reports).
  const VersionedProgram Program = generateVersions(M);
  ASSERT_EQ(Program.Sections.size(), 1u);
  const VersionedSection &VS = Program.Sections[0];
  ASSERT_GE(VS.Versions.size(), 1u);
  ASSERT_LE(VS.Versions.size(), 3u);

  const RandomBinding Binding(Seed);
  const rt::CostModel CM = rt::CostModel::dashLike();

  rt::IterationEmitter Orig(VS.versionFor(PolicyKind::Original).Entry,
                            Binding, CM);
  rt::IterationEmitter Bnd(VS.versionFor(PolicyKind::Bounded).Entry,
                           Binding, CM);
  rt::IterationEmitter Agg(VS.versionFor(PolicyKind::Aggressive).Entry,
                           Binding, CM);
  rt::IterationEmitter Serial(VS.SerialEntry, Binding, CM);

  for (uint64_t I = 0; I < Binding.iterationCount(); ++I) {
    // Useful work is identical in every version.
    const rt::Nanos Work = Serial.computeTime(I);
    EXPECT_EQ(Orig.computeTime(I), Work) << "seed " << Seed;
    EXPECT_EQ(Bnd.computeTime(I), Work) << "seed " << Seed;
    EXPECT_EQ(Agg.computeTime(I), Work) << "seed " << Seed;
    // Lock pairs are monotone across policies; serial has none.
    EXPECT_EQ(Serial.countPairs(I), 0u);
    EXPECT_LE(Agg.countPairs(I), Bnd.countPairs(I)) << "seed " << Seed;
    EXPECT_LE(Bnd.countPairs(I), Orig.countPairs(I)) << "seed " << Seed;
  }

  // One-processor simulation: time is monotone with the pair counts, and
  // every run terminates (deadlock-freedom).
  constexpr rt::Nanos Unbounded = std::numeric_limits<rt::Nanos>::max() / 4;
  auto RunOnce = [&](const Method *VersionEntry, unsigned Procs) {
    sim::SimMachine Machine(Procs, CM);
    sim::SimSectionRunner Runner(Machine, Binding,
                                 {sim::SimVersion{"v", VersionEntry}},
                                 false);
    const rt::IntervalReport Report = Runner.runInterval(0, Unbounded);
    EXPECT_TRUE(Report.Finished) << "seed " << Seed;
    return Report;
  };

  const rt::Nanos T1Orig =
      RunOnce(VS.versionFor(PolicyKind::Original).Entry, 1).EffectiveNanos;
  const rt::Nanos T1Bnd =
      RunOnce(VS.versionFor(PolicyKind::Bounded).Entry, 1).EffectiveNanos;
  const rt::Nanos T1Agg =
      RunOnce(VS.versionFor(PolicyKind::Aggressive).Entry, 1)
          .EffectiveNanos;
  EXPECT_LE(T1Agg, T1Bnd) << "seed " << Seed;
  EXPECT_LE(T1Bnd, T1Orig) << "seed " << Seed;

  // Semantic equivalence: every version computes the same final object
  // state as the serial code, under both natural and reversed iteration
  // orders (the operations commute).
  {
    std::vector<uint64_t> Natural(Binding.iterationCount());
    for (uint64_t I = 0; I < Natural.size(); ++I)
      Natural[I] = I;
    std::vector<uint64_t> Reversed(Natural.rbegin(), Natural.rend());

    rt::ObjectStore Reference;
    rt::SectionEvaluator(VS.SerialEntry, Binding).runAll(Natural, Reference);
    for (const SectionVersion &V : VS.Versions) {
      rt::SectionEvaluator E(V.Entry, Binding);
      rt::ObjectStore Fwd, Bwd;
      E.runAll(Natural, Fwd);
      E.runAll(Reversed, Bwd);
      EXPECT_TRUE(Fwd == Reference)
          << "seed " << Seed << " version " << V.label();
      EXPECT_TRUE(Bwd == Reference)
          << "seed " << Seed << " version " << V.label();
    }
  }

  // Multi-processor runs terminate and are deterministic.
  for (unsigned Procs : {3u, 8u}) {
    const rt::IntervalReport A =
        RunOnce(VS.versionFor(PolicyKind::Aggressive).Entry, Procs);
    const rt::IntervalReport B =
        RunOnce(VS.versionFor(PolicyKind::Aggressive).Entry, Procs);
    EXPECT_EQ(A.EffectiveNanos, B.EffectiveNanos) << "seed " << Seed;
    EXPECT_EQ(A.Stats.FailedAcquires, B.Stats.FailedAcquires)
        << "seed " << Seed;
  }

  // The dynamic feedback controller terminates on arbitrary generated
  // programs, completes every iteration, and is deterministic.
  {
    std::vector<sim::SimVersion> SimVersions;
    for (const SectionVersion &V : VS.Versions)
      SimVersions.push_back(sim::SimVersion{V.label(), V.Entry});
    auto RunDynamic = [&] {
      sim::SimMachine Machine(4, CM);
      sim::SimSectionRunner Runner(Machine, Binding, SimVersions, true);
      fb::FeedbackConfig FC;
      FC.TargetSamplingNanos = rt::millisToNanos(0.05);
      FC.TargetProductionNanos = rt::millisToNanos(1.0);
      fb::FeedbackController Controller(FC);
      const fb::SectionExecutionTrace Trace =
          Controller.executeSection(Runner, "S");
      EXPECT_TRUE(Runner.done()) << "seed " << Seed;
      return Trace.durationNanos();
    };
    EXPECT_EQ(RunDynamic(), RunDynamic()) << "seed " << Seed;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomProgramTest,
                         ::testing::Range<uint64_t>(1, 61));

} // namespace
