//===- tests/VersionSpaceTest.cpp - Version-space composition tests -------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/water/WaterApp.h"
#include "ir/StructuralHash.h"
#include "xform/MultiVersion.h"
#include "xform/VersionSpace.h"

#include <gtest/gtest.h>

#include <set>

using namespace dynfb;
using namespace dynfb::xform;

namespace {

rt::SchedSpec dyn() { return rt::SchedSpec::dynamic(); }

VersionSpace nineSpace() {
  return VersionSpace::product(
      {PolicyKind::Original, PolicyKind::Bounded, PolicyKind::Aggressive},
      {dyn(), rt::SchedSpec::chunked(8), rt::SchedSpec::chunked(32)});
}

// ------------------------- Space composition ------------------------------

TEST(VersionSpaceTest, DefaultIsThePapersThreePolicies) {
  const VersionSpace Space;
  ASSERT_EQ(Space.size(), 3u);
  EXPECT_TRUE(Space.isDefault());
  EXPECT_EQ(Space.descriptors()[0].name(), "Original");
  EXPECT_EQ(Space.descriptors()[1].name(), "Bounded");
  EXPECT_EQ(Space.descriptors()[2].name(), "Aggressive");
  for (const VersionDescriptor &D : Space.descriptors())
    EXPECT_EQ(D.Sched, dyn());
}

TEST(VersionSpaceTest, ProductIsPolicyMajor) {
  const VersionSpace Space = nineSpace();
  ASSERT_EQ(Space.size(), 9u);
  EXPECT_FALSE(Space.isDefault());
  // The synchronization dimension varies slowest, so the first and last
  // descriptors are the extreme policies early cut-off wants first.
  EXPECT_EQ(Space.descriptors().front().Policy, PolicyKind::Original);
  EXPECT_EQ(Space.descriptors().back().Policy, PolicyKind::Aggressive);
  EXPECT_EQ(Space.descriptors()[1].name(), "Original+chunk8");
  EXPECT_EQ(Space.descriptors()[5].name(), "Bounded+chunk32");
  // All nine points distinct.
  std::set<std::string> Names;
  for (const VersionDescriptor &D : Space.descriptors())
    Names.insert(D.name());
  EXPECT_EQ(Names.size(), 9u);
}

TEST(VersionSpaceTest, DescriptorNamesAndSuffixes) {
  const VersionDescriptor Plain{PolicyKind::Bounded, dyn()};
  EXPECT_EQ(Plain.name(), "Bounded");
  EXPECT_EQ(Plain.suffix(), "$bnd");
  const VersionDescriptor Chunked{PolicyKind::Aggressive,
                                  rt::SchedSpec::chunked(32)};
  EXPECT_EQ(Chunked.name(), "Aggressive+chunk32");
  EXPECT_EQ(Chunked.suffix(), "$agg$c32");
}

TEST(VersionSpaceTest, DimensionValueQueries) {
  const VersionSpace Space = nineSpace();
  EXPECT_EQ(Space.policies().size(), 3u);
  ASSERT_EQ(Space.scheds().size(), 3u);
  EXPECT_EQ(Space.scheds()[0], dyn());
  EXPECT_EQ(Space.scheds()[2], rt::SchedSpec::chunked(32));
}

// ------------------------------ Parsing -----------------------------------

TEST(VersionSpaceTest, ParseSyncAloneYieldsTheDefaultSpace) {
  std::string Error;
  const auto Space = VersionSpace::parse("sync", "", Error);
  ASSERT_TRUE(Space.has_value()) << Error;
  EXPECT_TRUE(Space->isDefault());
}

TEST(VersionSpaceTest, ParseProductSpec) {
  std::string Error;
  const auto Space = VersionSpace::parse("sync,sched", "8,64", Error);
  ASSERT_TRUE(Space.has_value()) << Error;
  EXPECT_EQ(Space->size(), 9u);
  EXPECT_EQ(Space->scheds().size(), 3u); // dynamic + two chunked strategies
  EXPECT_EQ(Space->descriptors()[2].name(), "Original+chunk64");
}

TEST(VersionSpaceTest, ParseDlsChunkTokens) {
  // The named tokens of the DLS scheduling family parse next to literal
  // chunk sizes and expand the product to the 3x5 search space.
  std::string Error;
  const auto Space =
      VersionSpace::parse("sync,sched", "8,fac,wfac,afac", Error);
  ASSERT_TRUE(Space.has_value()) << Error;
  EXPECT_EQ(Space->size(), 15u); // 3 policies x (dyn, chunk8, fac, wfac, afac)
  ASSERT_EQ(Space->scheds().size(), 5u);
  EXPECT_EQ(Space->descriptors()[1].name(), "Original+chunk8");
  EXPECT_EQ(Space->descriptors()[2].name(), "Original+fac");
  EXPECT_EQ(Space->descriptors()[3].name(), "Original+wfac");
  EXPECT_EQ(Space->descriptors()[4].name(), "Original+afac");
  // DLS schedulings taper their chunks; fixed-size ones do not.
  EXPECT_FALSE(Space->scheds()[0].variableChunk()); // dynamic
  EXPECT_FALSE(Space->scheds()[1].variableChunk()); // chunk8
  for (size_t I = 2; I < 5; ++I)
    EXPECT_TRUE(Space->scheds()[I].variableChunk());
  // Every descriptor name is distinct.
  std::set<std::string> Names;
  for (const VersionDescriptor &D : Space->descriptors())
    Names.insert(D.name());
  EXPECT_EQ(Names.size(), 15u);
}

TEST(VersionSpaceTest, DlsFetchSizesTaperAndCoverTheLoop) {
  // fetchIters() is the runtime contract of the DLS family: positive while
  // work remains, no larger than what remains, and tapering as the loop
  // drains.
  const unsigned Total = 1000, Procs = 8;
  for (const char *Name : {"fac", "wfac", "afac"}) {
    std::string Error;
    const auto Space = VersionSpace::parse("sync,sched", Name, Error);
    ASSERT_TRUE(Space.has_value()) << Error;
    const rt::SchedSpec Sched = Space->scheds()[1];
    unsigned Remaining = Total;
    unsigned First = 0, Fetches = 0;
    while (Remaining > 0) {
      const unsigned K =
          Sched.fetchIters(Remaining, Total, Procs, Fetches % Procs);
      ASSERT_GT(K, 0u) << Name << " starved with " << Remaining << " left";
      ASSERT_LE(K, Remaining) << Name;
      if (!First)
        First = K;
      Remaining -= K;
      ++Fetches;
    }
    // Tapering: the first chunk is large, and far fewer fetches than
    // one-iteration self-scheduling would take.
    EXPECT_GE(First, Total / (4 * Procs)) << Name;
    EXPECT_LT(Fetches, Total / 2) << Name;
  }
}

TEST(VersionSpaceTest, ParseRejectsMalformedSpecs) {
  const struct {
    const char *Dimensions;
    const char *Chunks;
  } Bad[] = {
      {"", ""},            // empty dimension list
      {"bogus", ""},       // unknown dimension
      {"sched", "8"},      // sync is mandatory
      {"sync,sync", ""},   // duplicate dimension
      {"sync", "8"},       // chunks without the sched dimension
      {"sync,sched", ""},  // sched dimension without chunk sizes
      {"sync,sched", "1"}, // chunk 1 is dynamic self-scheduling
      {"sync,sched", "8,8"},   // duplicate chunk size
      {"sync,sched", "8,abc"}, // malformed chunk size
      {"sync,sched", "facc"},  // typo of a DLS token
      {"sync,sched", "fac,fac"}, // duplicate DLS token
  };
  for (const auto &Spec : Bad) {
    std::string Error;
    EXPECT_FALSE(
        VersionSpace::parse(Spec.Dimensions, Spec.Chunks, Error).has_value())
        << Spec.Dimensions << " / " << Spec.Chunks;
    EXPECT_FALSE(Error.empty());
    EXPECT_EQ(Error.find('\n'), std::string::npos)
        << "diagnostics must be one line";
  }
}

// --------------------- Nine-version code generation -----------------------

/// Water is the interesting generation target: INTERF merges Bounded with
/// Aggressive and POTENG merges Original with Bounded, so the 9-point space
/// must deduplicate to 6 versions per section while keeping every
/// descriptor addressable.
class WaterNineVersions : public ::testing::Test {
protected:
  static void SetUpTestSuite() {
    apps::water::WaterConfig Config;
    Config.scale(0.125);
    Water = new apps::water::WaterApp(Config, nineSpace());
  }
  static void TearDownTestSuite() {
    delete Water;
    Water = nullptr;
  }
  static apps::water::WaterApp *Water;
};

apps::water::WaterApp *WaterNineVersions::Water = nullptr;

TEST_F(WaterNineVersions, DeduplicatesMergedPolicies) {
  const VersionedSection *Interf =
      Water->program().find(apps::water::WaterApp::InterfSection);
  const VersionedSection *Poteng =
      Water->program().find(apps::water::WaterApp::PotengSection);
  ASSERT_NE(Interf, nullptr);
  ASSERT_NE(Poteng, nullptr);
  // Two distinct policies x three schedulings each.
  EXPECT_EQ(Interf->Versions.size(), 6u);
  EXPECT_EQ(Poteng->Versions.size(), 6u);
  EXPECT_EQ(Interf->versionFor({PolicyKind::Bounded, dyn()}).Entry,
            Interf->versionFor({PolicyKind::Aggressive, dyn()}).Entry);
  EXPECT_EQ(Poteng->versionFor({PolicyKind::Original, dyn()}).Entry,
            Poteng->versionFor({PolicyKind::Bounded, dyn()}).Entry);
  EXPECT_NE(Poteng->versionFor({PolicyKind::Bounded, dyn()}).Entry,
            Poteng->versionFor({PolicyKind::Aggressive, dyn()}).Entry);
}

TEST_F(WaterNineVersions, EveryDescriptorAddressesExactlyOneVersion) {
  for (const VersionedSection &VS : Water->program().Sections) {
    unsigned Listed = 0;
    for (const SectionVersion &V : VS.Versions) {
      EXPECT_FALSE(V.Descriptors.empty());
      Listed += static_cast<unsigned>(V.Descriptors.size());
    }
    EXPECT_EQ(Listed, 9u) << VS.Name;
    for (const VersionDescriptor &D : Water->versionSpace().descriptors()) {
      const SectionVersion &V = VS.versionFor(D);
      EXPECT_TRUE(V.hasDescriptor(D));
      EXPECT_EQ(V.Sched, D.Sched);
    }
  }
}

TEST_F(WaterNineVersions, SchedVariantsOfAPolicyShareTheirEntry) {
  for (const VersionedSection &VS : Water->program().Sections)
    for (PolicyKind P : AllPolicies) {
      const ir::Method *DynEntry = VS.versionFor({P, dyn()}).Entry;
      EXPECT_EQ(VS.versionFor({P, rt::SchedSpec::chunked(8)}).Entry,
                DynEntry);
      EXPECT_EQ(VS.versionFor({P, rt::SchedSpec::chunked(32)}).Entry,
                DynEntry);
    }
}

TEST_F(WaterNineVersions, NoTwoVersionsAreEquivalent) {
  // Deduplication must be complete: after it, no pair of versions of one
  // section may share both the scheduling strategy and structurally equal
  // code. The structural hash separates the distinct entries.
  for (const VersionedSection &VS : Water->program().Sections) {
    std::set<std::pair<std::string, uint64_t>> Keys;
    for (const SectionVersion &V : VS.Versions) {
      ASSERT_NE(V.Entry, nullptr);
      Keys.insert({V.Sched.name(), ir::structuralHash(*V.Entry)});
    }
    EXPECT_EQ(Keys.size(), VS.Versions.size()) << VS.Name;
    for (size_t I = 0; I < VS.Versions.size(); ++I)
      for (size_t J = I + 1; J < VS.Versions.size(); ++J) {
        const SectionVersion &A = VS.Versions[I];
        const SectionVersion &B = VS.Versions[J];
        EXPECT_FALSE(A.Sched == B.Sched &&
                     ir::structurallyEqual(*A.Entry, *B.Entry))
            << VS.Name << ": versions " << A.label() << " and " << B.label();
      }
  }
}

TEST_F(WaterNineVersions, ClonesCarryCompositeSuffixes) {
  // The policy part of the descriptor suffix materializes cloned method
  // bodies; distinct-policy entries are distinct clones of the section
  // entry, not the authored method itself.
  for (const VersionedSection &VS : Water->program().Sections) {
    std::set<const ir::Method *> Entries;
    for (const SectionVersion &V : VS.Versions)
      Entries.insert(V.Entry);
    EXPECT_GE(Entries.size(), 2u) << VS.Name;
    for (const SectionVersion &V : VS.Versions)
      EXPECT_NE(V.Entry, VS.SerialEntry);
  }
}

} // namespace
