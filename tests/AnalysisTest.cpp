//===- tests/AnalysisTest.cpp - Unit tests for the analysis layer ---------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "analysis/CallGraph.h"
#include "analysis/Commutativity.h"
#include "analysis/FieldAccess.h"
#include "analysis/Regions.h"
#include "ir/Builder.h"

#include <algorithm>
#include <gtest/gtest.h>

using namespace dynfb::analysis;
using namespace dynfb::ir;

namespace {

// ---------------------------- CallGraph -----------------------------------

TEST(CallGraphTest, ClosureAndBottomUpOrder) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Leaf = M.createMethod("leaf", C);
  Method *Mid = M.createMethod("mid", C);
  Mid->body().push_back(M.createCall(Leaf, Receiver::thisObj(), {}));
  Method *Root = M.createMethod("root", C);
  Root->body().push_back(M.createCall(Mid, Receiver::thisObj(), {}));
  Root->body().push_back(M.createCall(Leaf, Receiver::thisObj(), {}));

  CallGraph CG(*Root);
  EXPECT_EQ(CG.nodes().size(), 3u);
  EXPECT_EQ(CG.callees(Root).size(), 2u);

  const auto Order = CG.bottomUpOrder();
  const auto Pos = [&](const Method *X) {
    return std::find(Order.begin(), Order.end(), X) - Order.begin();
  };
  EXPECT_LT(Pos(Leaf), Pos(Mid));
  EXPECT_LT(Pos(Mid), Pos(Root));
}

TEST(CallGraphTest, DetectsDirectRecursion) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Rec = M.createMethod("rec", C);
  Rec->body().push_back(M.createCall(Rec, Receiver::thisObj(), {}));
  CallGraph CG(*Rec);
  EXPECT_TRUE(CG.isInCycle(Rec));
  EXPECT_TRUE(CG.closureContainsCycle(Rec));
}

TEST(CallGraphTest, DetectsMutualRecursion) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *A = M.createMethod("a", C);
  Method *B = M.createMethod("b", C);
  A->body().push_back(M.createCall(B, Receiver::thisObj(), {}));
  B->body().push_back(M.createCall(A, Receiver::thisObj(), {}));
  Method *Root = M.createMethod("root", C);
  Root->body().push_back(M.createCall(A, Receiver::thisObj(), {}));
  CallGraph CG(*Root);
  EXPECT_TRUE(CG.isInCycle(A));
  EXPECT_TRUE(CG.isInCycle(B));
  EXPECT_FALSE(CG.isInCycle(Root));
  EXPECT_TRUE(CG.closureContainsCycle(Root));
}

TEST(CallGraphTest, AcyclicClosureHasNoCycles) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Leaf = M.createMethod("leaf", C);
  Method *Root = M.createMethod("root", C);
  Root->body().push_back(M.createCall(Leaf, Receiver::thisObj(), {}));
  CallGraph CG(*Root);
  EXPECT_FALSE(CG.closureContainsCycle(Root));
}

// ---------------------------- FieldAccess ---------------------------------

TEST(FieldAccessTest, CollectsReadsAndWritesInterprocedurally) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned Ro = C->addField("ro");
  const unsigned Acc = C->addField("acc");
  Method *Callee = M.createMethod("callee", C);
  Callee->body().push_back(
      M.createUpdate(Receiver::thisObj(), Acc, BinOp::Add,
                     M.exprFieldRead(Receiver::thisObj(), Ro)));
  Method *Root = M.createMethod("root", C);
  Root->body().push_back(M.createCall(Callee, Receiver::thisObj(), {}));

  const AccessSummary S = computeAccessSummary(*Root);
  EXPECT_TRUE(S.reads(FieldKey{C, Ro}));
  EXPECT_FALSE(S.reads(FieldKey{C, Acc}));
  ASSERT_TRUE(S.writes(FieldKey{C, Acc}));
  EXPECT_EQ(S.Writes.at(FieldKey{C, Acc}).front().Op, BinOp::Add);
}

// ---------------------------- Commutativity -------------------------------

/// Builds a single-update method `this->f <op> e` where e reads `g`.
struct UpdateProgram {
  Module M{"m"};
  ClassDecl *C;
  unsigned F, G;
  Method *Entry;

  explicit UpdateProgram(BinOp Op, bool ReadOwnField = false) {
    C = M.createClass("c");
    F = C->addField("f");
    G = C->addField("g");
    Entry = M.createMethod("entry", C);
    const Expr *Val = M.exprFieldRead(Receiver::thisObj(),
                                      ReadOwnField ? F : G);
    Entry->body().push_back(M.createUpdate(Receiver::thisObj(), F, Op, Val));
  }
};

TEST(CommutativityTest, AddUpdateCommutes) {
  UpdateProgram P(BinOp::Add);
  EXPECT_TRUE(analyzeEntry(*P.Entry).Commutes);
}

TEST(CommutativityTest, MinMaxMulCommute) {
  for (BinOp Op : {BinOp::Min, BinOp::Max, BinOp::Mul}) {
    UpdateProgram P(Op);
    EXPECT_TRUE(analyzeEntry(*P.Entry).Commutes);
  }
}

TEST(CommutativityTest, AssignDoesNotCommute) {
  UpdateProgram P(BinOp::Assign);
  const auto R = analyzeEntry(*P.Entry);
  EXPECT_FALSE(R.Commutes);
  ASSERT_FALSE(R.Diagnostics.empty());
  EXPECT_NE(R.Diagnostics[0].find("non-commuting"), std::string::npos);
}

TEST(CommutativityTest, SubDivDoNotCommute) {
  for (BinOp Op : {BinOp::Sub, BinOp::Div}) {
    UpdateProgram P(Op);
    EXPECT_FALSE(analyzeEntry(*P.Entry).Commutes);
  }
}

TEST(CommutativityTest, ReadingWrittenFieldRejected) {
  // f = f + f: the value expression reads the written field.
  UpdateProgram P(BinOp::Add, /*ReadOwnField=*/true);
  const auto R = analyzeEntry(*P.Entry);
  EXPECT_FALSE(R.Commutes);
}

TEST(CommutativityTest, MixedOperatorsOnOneFieldRejected) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  Method *Entry = M.createMethod("entry", C);
  Entry->body().push_back(
      M.createUpdate(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0)));
  Entry->body().push_back(
      M.createUpdate(Receiver::thisObj(), F, BinOp::Mul, M.exprConst(2.0)));
  const auto R = analyzeEntry(*Entry);
  EXPECT_FALSE(R.Commutes);
}

TEST(CommutativityTest, DisjointFieldsWithDifferentOpsCommute) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  const unsigned F = C->addField("f");
  const unsigned G = C->addField("g");
  Method *Entry = M.createMethod("entry", C);
  Entry->body().push_back(
      M.createUpdate(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0)));
  Entry->body().push_back(
      M.createUpdate(Receiver::thisObj(), G, BinOp::Mul, M.exprConst(2.0)));
  EXPECT_TRUE(analyzeEntry(*Entry).Commutes);
}

// ---------------------------- Regions -------------------------------------

TEST(RegionsTest, ScanFindsTopLevelRegions) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  C->addField("f");
  Method *Meth = M.createMethod("m", C);
  auto &Body = Meth->body();
  Body.push_back(M.createAcquire(Receiver::thisObj()));
  Body.push_back(
      M.createUpdate(Receiver::thisObj(), 0, BinOp::Add, M.exprConst(1.0)));
  Body.push_back(M.createRelease(Receiver::thisObj()));
  Body.push_back(M.createCompute(0));
  Body.push_back(M.createAcquire(Receiver::param(0)));
  Body.push_back(M.createRelease(Receiver::param(0)));
  Meth->addParam(Param{"p", C, false});

  const auto Regions = scanRegions(Body);
  ASSERT_EQ(Regions.size(), 2u);
  EXPECT_EQ(Regions[0].AcqIdx, 0u);
  EXPECT_EQ(Regions[0].RelIdx, 2u);
  EXPECT_EQ(Regions[1].AcqIdx, 4u);
  EXPECT_EQ(Regions[1].Recv, Receiver::param(0));
}

TEST(RegionsTest, ShapeLockFree) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Meth = M.createMethod("m", C);
  Meth->body().push_back(M.createCompute(0));
  ShapeAnalysis SA;
  EXPECT_EQ(SA.summary(Meth).Shape, BodyShape::LockFree);
}

TEST(RegionsTest, ShapeSingleRegionWithPurePrefix) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  C->addField("f");
  Method *Meth = M.createMethod("m", C);
  Meth->body().push_back(M.createCompute(0));
  Meth->body().push_back(M.createAcquire(Receiver::thisObj()));
  Meth->body().push_back(
      M.createUpdate(Receiver::thisObj(), 0, BinOp::Add, M.exprConst(1.0)));
  Meth->body().push_back(M.createRelease(Receiver::thisObj()));
  ShapeAnalysis SA;
  const ShapeSummary &S = SA.summary(Meth);
  EXPECT_EQ(S.Shape, BodyShape::SingleRegion);
  EXPECT_EQ(S.RegionRecv, Receiver::thisObj());
}

TEST(RegionsTest, ShapeMixedForTwoRegions) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Meth = M.createMethod("m", C);
  Meth->addParam(Param{"p", C, false});
  Meth->body().push_back(M.createAcquire(Receiver::thisObj()));
  Meth->body().push_back(M.createRelease(Receiver::thisObj()));
  Meth->body().push_back(M.createAcquire(Receiver::param(0)));
  Meth->body().push_back(M.createRelease(Receiver::param(0)));
  ShapeAnalysis SA;
  EXPECT_EQ(SA.summary(Meth).Shape, BodyShape::Mixed);
}

TEST(RegionsTest, SingleRegionThroughCall) {
  // Caller's body is just a call to a SingleRegion callee: the caller is
  // itself SingleRegion with the translated receiver.
  Module M("m");
  ClassDecl *C = M.createClass("c");
  C->addField("f");
  Method *Callee = M.createMethod("callee", C);
  Callee->body().push_back(M.createAcquire(Receiver::thisObj()));
  Callee->body().push_back(
      M.createUpdate(Receiver::thisObj(), 0, BinOp::Add, M.exprConst(1.0)));
  Callee->body().push_back(M.createRelease(Receiver::thisObj()));
  Method *Caller = M.createMethod("caller", C);
  Caller->addParam(Param{"p", C, false});
  Caller->body().push_back(M.createCall(Callee, Receiver::param(0), {}));
  ShapeAnalysis SA;
  const ShapeSummary &S = SA.summary(Caller);
  EXPECT_EQ(S.Shape, BodyShape::SingleRegion);
  EXPECT_EQ(S.RegionRecv, Receiver::param(0));
}

TEST(RegionsTest, TranslateToCallerMapsThisAndParams) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Callee = M.createMethod("callee", C);
  Callee->addParam(Param{"x", C, false});
  CallStmt *Call =
      M.createCall(Callee, Receiver::param(2), {Receiver::thisObj()});
  // Callee's `this` is the caller's param(2).
  auto T1 = ShapeAnalysis::translateToCaller(Receiver::thisObj(), *Call);
  ASSERT_TRUE(T1.has_value());
  EXPECT_EQ(*T1, Receiver::param(2));
  // Callee's param(0) is the caller's `this`.
  auto T2 = ShapeAnalysis::translateToCaller(Receiver::param(0), *Call);
  ASSERT_TRUE(T2.has_value());
  EXPECT_EQ(*T2, Receiver::thisObj());
  // ParamIndexed receivers cannot be translated.
  auto T3 =
      ShapeAnalysis::translateToCaller(Receiver::paramIndexed(0, 1), *Call);
  EXPECT_FALSE(T3.has_value());
}

} // namespace
