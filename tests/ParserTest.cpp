//===- tests/ParserTest.cpp - Textual IR round-trip tests -------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/barnes_hut/BarnesHutApp.h"
#include "apps/string_tomo/StringApp.h"
#include "apps/water/WaterApp.h"
#include "ir/Parser.h"
#include "ir/Printer.h"
#include "ir/StructuralHash.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::ir;

namespace {

/// Round-trips the author form of \p M (no synthetic methods) and checks
/// the reparsed module prints identically and matches structurally.
void roundTrip(const Module &M) {
  const std::string Printed = printModule(M, /*IncludeSynthetic=*/false);
  const ParseResult Result = parseModule(Printed);
  ASSERT_TRUE(Result.ok()) << Result.Error << "\n--- input ---\n" << Printed;

  // Print-parse-print is a fixed point.
  const std::string Reprinted = printModule(*Result.M);
  EXPECT_EQ(Printed, Reprinted);

  // The reparsed module is well-formed and structurally identical method
  // by method.
  EXPECT_TRUE(verifyModule(*Result.M).empty());
  size_t AuthorCount = 0;
  for (const auto &Orig : M.methods()) {
    if (Orig->isSynthetic())
      continue;
    ++AuthorCount;
    const Method *Reparsed = Result.M->findMethod(Orig->name());
    ASSERT_NE(Reparsed, nullptr) << Orig->name();
    EXPECT_TRUE(structurallyEqual(*Orig, *Reparsed)) << Orig->name();
  }
  EXPECT_EQ(Result.M->methods().size(), AuthorCount);
  EXPECT_EQ(Result.M->sections().size(), M.sections().size());
}

TEST(ParserTest, RoundTripsBarnesHut) {
  apps::bh::BarnesHutConfig Config;
  Config.NumBodies = 32;
  apps::bh::BarnesHutApp App(Config);
  roundTrip(App.module());
}

TEST(ParserTest, RoundTripsWater) {
  apps::water::WaterConfig Config;
  Config.NumMolecules = 16;
  apps::water::WaterApp App(Config);
  roundTrip(App.module());
}

TEST(ParserTest, RoundTripsString) {
  apps::string_tomo::StringConfig Config;
  Config.NumRays = 16;
  apps::string_tomo::StringApp App(Config);
  roundTrip(App.module());
}

TEST(ParserTest, ParsesHandWrittenProgram) {
  const char *Source = R"(module demo

class cell { lock mutex; double ro; double acc; };

void cell::bump(cell *other, double w) {
  compute #3 reads(this->ro, other->ro);
  this->acc = this->acc + f(this->ro, w);
  other->acc = other->acc max (this->ro * 2);
}

void cell::sweep(cell all[]) {
  for i7 in 0..n7 {
    this->bump(all[i7], all[i7]);
  }
}

parallel section SWEEP: for all objects o: o->sweep(...)
)";
  // Note: the call passes all[i7] twice; only the object parameter binds
  // (the scalar double is not modelled in call argument lists by the
  // printer) -- adjust to the printable form first.
  const std::string Fixed = [&] {
    std::string S = Source;
    const std::string From = "this->bump(all[i7], all[i7]);";
    const std::string To = "this->bump(all[i7]);";
    return S.replace(S.find(From), From.size(), To);
  }();

  const ParseResult Result = parseModule(Fixed);
  ASSERT_TRUE(Result.ok()) << Result.Error;
  const Module &M = *Result.M;
  EXPECT_EQ(M.name(), "demo");
  ASSERT_EQ(M.classes().size(), 1u);
  EXPECT_EQ(M.classes()[0]->fields().size(), 2u);
  const Method *Bump = M.findMethod("bump");
  ASSERT_NE(Bump, nullptr);
  ASSERT_EQ(Bump->body().size(), 3u);
  EXPECT_EQ(Bump->body()[0]->kind(), StmtKind::Compute);
  EXPECT_EQ(stmtCast<ComputeStmt>(Bump->body()[0]).CostClass, 3u);
  const auto &U2 = stmtCast<UpdateStmt>(Bump->body()[2]);
  EXPECT_EQ(U2.Op, BinOp::Max);
  EXPECT_EQ(U2.Recv, Receiver::param(0));
  // Loop ids are reserved: the next fresh id is beyond the printed one.
  EXPECT_GT(Result.M->nextLoopId(), 7u);
  ASSERT_EQ(M.sections().size(), 1u);
  EXPECT_EQ(M.sections()[0].IterMethod, M.findMethod("sweep"));
}

TEST(ParserTest, RoundTripsFullyGeneratedModule) {
  // The whole module including compiler-generated versions ($-suffixed
  // clones, _nolock variants) round-trips; forward references are fine
  // because declarations parse before bodies.
  apps::bh::BarnesHutConfig Config;
  Config.NumBodies = 32;
  apps::bh::BarnesHutApp App(Config);
  const std::string Printed = printModule(App.module());
  const ParseResult Result = parseModule(Printed);
  ASSERT_TRUE(Result.ok()) << Result.Error;
  EXPECT_EQ(printModule(*Result.M), Printed);
  EXPECT_EQ(Result.M->methods().size(), App.module().methods().size());
  EXPECT_TRUE(verifyModule(*Result.M).empty());
}

TEST(ParserTest, ReportsUnknownClass) {
  const ParseResult R = parseModule(
      "module m\nvoid ghost::f() {\n}\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unknown class"), std::string::npos);
  EXPECT_NE(R.Error.find("line"), std::string::npos);
}

TEST(ParserTest, ReportsUnknownField) {
  const ParseResult R = parseModule(
      "module m\nclass c { lock mutex; double f; };\n"
      "void c::m() {\n  this->nope = this->nope + 1;\n}\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("unknown field"), std::string::npos);
}

TEST(ParserTest, ReportsMalformedUpdate) {
  const ParseResult R = parseModule(
      "module m\nclass c { lock mutex; double f; double g; };\n"
      "void c::m() {\n  this->f = this->g + 1;\n}\n");
  EXPECT_FALSE(R.ok());
  EXPECT_NE(R.Error.find("repeat its target"), std::string::npos);
}

TEST(ParserTest, ReportsUnterminatedBody) {
  const ParseResult R = parseModule(
      "module m\nclass c { lock mutex; double f; };\nvoid c::m() {\n");
  EXPECT_FALSE(R.ok());
}

TEST(ParserTest, ParsesAssignAndLockOps) {
  const ParseResult R = parseModule(
      "module m\nclass c { lock mutex; double f; };\n"
      "void c::m() {\n"
      "  this->mutex.acquire();\n"
      "  this->f = 42;\n"
      "  this->mutex.release();\n"
      "}\n");
  ASSERT_TRUE(R.ok()) << R.Error;
  const Method *Meth = R.M->findMethod("m");
  ASSERT_EQ(Meth->body().size(), 3u);
  EXPECT_EQ(Meth->body()[0]->kind(), StmtKind::Acquire);
  EXPECT_EQ(stmtCast<UpdateStmt>(Meth->body()[1]).Op, BinOp::Assign);
  EXPECT_EQ(Meth->body()[2]->kind(), StmtKind::Release);
}

} // namespace
