//===- tests/ObsTest.cpp - Observability layer unit tests -----------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Covers the obs subsystem (metrics registry, decision log, JSON parser,
// trace exporters, report renderer), its integration with the feedback
// controller, and the measurement-guard regressions in rt::OverheadStats /
// rt::aggregateOverheads.
//
//===----------------------------------------------------------------------===//

#include "apps/Factory.h"
#include "apps/Harness.h"
#include "fb/Controller.h"
#include "obs/DecisionLog.h"
#include "obs/Export.h"
#include "obs/Json.h"
#include "obs/Metrics.h"
#include "obs/Report.h"
#include "rt/Stats.h"

#include <cmath>
#include <functional>
#include <limits>

#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::fb;
using namespace dynfb::rt;

namespace {

// ------------------------------ Metrics ------------------------------------

TEST(MetricsTest, CounterAndGaugeBasics) {
  obs::MetricsRegistry R;
  obs::Counter &C = R.counter("a.count");
  C.add();
  C.add(4);
  EXPECT_EQ(C.value(), 5u);
  EXPECT_EQ(R.counterValue("a.count"), 5u);
  EXPECT_EQ(R.counterValue("never.registered"), 0u);

  obs::Gauge &G = R.gauge("a.gauge");
  G.set(2.5);
  EXPECT_DOUBLE_EQ(G.value(), 2.5);
}

TEST(MetricsTest, ReferencesAreStableAndSurviveReset) {
  obs::MetricsRegistry R;
  obs::Counter &C1 = R.counter("stable");
  C1.add(7);
  // Second lookup returns the same object.
  EXPECT_EQ(&R.counter("stable"), &C1);
  R.reset();
  EXPECT_EQ(R.counterValue("stable"), 0u);
  // The cached reference is still live after reset.
  C1.add(2);
  EXPECT_EQ(R.counterValue("stable"), 2u);
}

TEST(MetricsTest, SnapshotIsSortedByName) {
  obs::MetricsRegistry R;
  R.counter("zz").add(1);
  R.counter("aa").add(2);
  R.gauge("mm").set(3.0);
  const std::vector<obs::MetricSample> S = R.snapshot();
  ASSERT_EQ(S.size(), 3u);
  for (size_t I = 1; I < S.size(); ++I)
    EXPECT_LT(S[I - 1].Name, S[I].Name);
}

TEST(MetricsTest, ToJsonParsesWithOwnParser) {
  obs::MetricsRegistry R;
  R.counter("runs").add(3);
  R.gauge("ratio").set(0.25);
  std::string Error;
  const std::optional<obs::JsonValue> V = obs::parseJson(R.toJson(), Error);
  ASSERT_TRUE(V.has_value()) << Error;
  EXPECT_EQ(V->getInt("runs"), 3);
  EXPECT_DOUBLE_EQ(V->getNumber("ratio"), 0.25);
}

// ------------------------------- JSON --------------------------------------

TEST(JsonTest, ParsesScalarsAndNesting) {
  std::string Error;
  const auto V = obs::parseJson(
      "{\"a\": [1, 2.5, -3e2], \"b\": {\"c\": true, \"d\": null}, "
      "\"s\": \"hi\"}",
      Error);
  ASSERT_TRUE(V.has_value()) << Error;
  const obs::JsonValue *A = V->find("a");
  ASSERT_NE(A, nullptr);
  ASSERT_EQ(A->items().size(), 3u);
  EXPECT_DOUBLE_EQ(A->items()[1].asNumber(), 2.5);
  EXPECT_DOUBLE_EQ(A->items()[2].asNumber(), -300.0);
  const obs::JsonValue *B = V->find("b");
  ASSERT_NE(B, nullptr);
  EXPECT_TRUE(B->find("c")->asBool());
  EXPECT_TRUE(B->find("d")->isNull());
  EXPECT_EQ(V->getString("s"), "hi");
  EXPECT_EQ(V->find("missing"), nullptr);
}

TEST(JsonTest, StringEscapes) {
  std::string Error;
  const auto V =
      obs::parseJson("\"a\\n\\t\\\"\\\\\\u0041\"", Error);
  ASSERT_TRUE(V.has_value()) << Error;
  EXPECT_EQ(V->asString(), "a\n\t\"\\A");
  // jsonEscape inverts: parse(quote(escape(s))) == s.
  const std::string Nasty = "line\nwith \"quotes\" and \\slashes\\";
  const auto Round =
      obs::parseJson("\"" + obs::jsonEscape(Nasty) + "\"", Error);
  ASSERT_TRUE(Round.has_value()) << Error;
  EXPECT_EQ(Round->asString(), Nasty);
}

TEST(JsonTest, RejectsMalformedInput) {
  std::string Error;
  EXPECT_FALSE(obs::parseJson("{\"a\": }", Error).has_value());
  EXPECT_FALSE(obs::parseJson("[1, 2", Error).has_value());
  EXPECT_FALSE(obs::parseJson("", Error).has_value());
  EXPECT_FALSE(obs::parseJson("{} trailing", Error).has_value());
  EXPECT_FALSE(obs::parseJson("\"unterminated", Error).has_value());
  EXPECT_FALSE(Error.empty());
}

// ---------------------------- Decision log ---------------------------------

TEST(DecisionLogTest, KindAndReasonNamesRoundTrip) {
  for (obs::DecisionKind K :
       {obs::DecisionKind::Sample, obs::DecisionKind::Switch,
        obs::DecisionKind::DriftResample, obs::DecisionKind::Prune,
        obs::DecisionKind::Promote})
    EXPECT_EQ(obs::parseDecisionKind(obs::decisionKindName(K)), K);
  for (obs::SwitchReason R :
       {obs::SwitchReason::None, obs::SwitchReason::BeatBest,
        obs::SwitchReason::HysteresisHeld, obs::SwitchReason::Fallback})
    EXPECT_EQ(obs::parseSwitchReason(obs::switchReasonName(R)), R);
  EXPECT_FALSE(obs::parseDecisionKind("bogus").has_value());
  EXPECT_FALSE(obs::parseSwitchReason("bogus").has_value());
}

TEST(DecisionLogTest, CountsByKind) {
  obs::DecisionLog Log;
  obs::DecisionEvent E;
  E.Kind = obs::DecisionKind::Sample;
  Log.append(E);
  Log.append(E);
  E.Kind = obs::DecisionKind::Switch;
  E.Reason = obs::SwitchReason::BeatBest;
  Log.append(E);
  EXPECT_EQ(Log.size(), 3u);
  EXPECT_EQ(Log.count(obs::DecisionKind::Sample), 2u);
  EXPECT_EQ(Log.count(obs::DecisionKind::Switch), 1u);
  EXPECT_EQ(Log.count(obs::DecisionKind::DriftResample), 0u);
  Log.clear();
  EXPECT_TRUE(Log.empty());
}

TEST(DecisionLogTest, TimelineNamesTheReason) {
  obs::DecisionLog Log;
  obs::DecisionEvent E;
  E.Kind = obs::DecisionKind::Switch;
  E.Section = "INTERF";
  E.Label = "Bounded";
  E.Overhead = 0.125;
  E.Reason = obs::SwitchReason::BeatBest;
  Log.append(E);
  const std::string T = Log.renderTimeline();
  EXPECT_NE(T.find("switch"), std::string::npos);
  EXPECT_NE(T.find("INTERF"), std::string::npos);
  EXPECT_NE(T.find("Bounded"), std::string::npos);
  EXPECT_NE(T.find("beat-best"), std::string::npos);
}

TEST(DecisionLogTest, SearchEventsRenderWithRound) {
  obs::DecisionLog Log;
  obs::DecisionEvent E;
  E.Kind = obs::DecisionKind::Prune;
  E.Section = "INTERF";
  E.Label = "Original+chunk8";
  E.Overhead = 0.7;
  E.Repeats = 2; // The search round the decision was taken in.
  Log.append(E);
  E.Kind = obs::DecisionKind::Promote;
  E.Label = "Aggressive+fac";
  E.Overhead = 0.05;
  Log.append(E);
  EXPECT_EQ(Log.count(obs::DecisionKind::Prune), 1u);
  EXPECT_EQ(Log.count(obs::DecisionKind::Promote), 1u);
  const std::string T = Log.renderTimeline();
  EXPECT_NE(T.find("prune"), std::string::npos);
  EXPECT_NE(T.find("promote"), std::string::npos);
  EXPECT_NE(T.find("Original+chunk8"), std::string::npos);
  EXPECT_NE(T.find("Aggressive+fac"), std::string::npos);
}

// ----------------------- Controller integration ----------------------------

/// Synthetic runner (same shape as FbTest's): version V has overhead
/// OverheadFn(V, now); each interval consumes min(target, remaining).
class MockRunner : public IntervalRunner {
public:
  MockRunner(unsigned NumVersions, Nanos TotalWork,
             std::function<double(unsigned, Nanos)> OverheadFn)
      : NumVersionsV(NumVersions), TotalWork(TotalWork),
        OverheadFn(std::move(OverheadFn)) {}

  unsigned numVersions() const override { return NumVersionsV; }
  std::string versionLabel(unsigned V) const override {
    return "v" + std::to_string(V);
  }
  IntervalReport runInterval(unsigned V, Nanos Target) override {
    const double Overhead = OverheadFn(V, Clock);
    const Nanos Dur = std::min(Target, Nanos(static_cast<double>(Remaining) /
                                             (1.0 - Overhead)));
    Clock += Dur;
    Remaining -=
        static_cast<Nanos>(static_cast<double>(Dur) * (1.0 - Overhead));
    if (Remaining < 1000) // Round-off guard.
      Remaining = 0;
    IntervalReport R;
    R.EffectiveNanos = Dur;
    R.Stats.ExecNanos = Dur;
    R.Stats.LockOpNanos = static_cast<Nanos>(Overhead * Dur);
    R.Stats.AcquireReleasePairs = static_cast<uint64_t>(V) + 1;
    R.Finished = Remaining == 0;
    return R;
  }
  bool done() const override { return Remaining == 0; }
  void reset() override { Remaining = TotalWork; }
  Nanos now() const override { return Clock; }

  const unsigned NumVersionsV;
  const Nanos TotalWork;
  Nanos Remaining = TotalWork;
  Nanos Clock = 0;
  std::function<double(unsigned, Nanos)> OverheadFn;
};

/// Runner whose measurements are all degenerate (zero execution time), so
/// no sampling phase ever yields a usable overhead.
class DegenerateRunner : public IntervalRunner {
public:
  explicit DegenerateRunner(Nanos TotalWork) : TotalWork(TotalWork) {}
  unsigned numVersions() const override { return 2; }
  std::string versionLabel(unsigned V) const override {
    return "v" + std::to_string(V);
  }
  IntervalReport runInterval(unsigned, Nanos Target) override {
    const Nanos Dur = std::min(Target, Remaining);
    Clock += Dur;
    Remaining -= Dur;
    IntervalReport R;
    R.EffectiveNanos = Dur;
    R.Stats.ExecNanos = 0; // Unmeasurable: 0/0 overhead.
    R.Finished = Remaining == 0;
    return R;
  }
  bool done() const override { return Remaining == 0; }
  void reset() override { Remaining = TotalWork; }
  Nanos now() const override { return Clock; }

  const Nanos TotalWork;
  Nanos Remaining = TotalWork;
  Nanos Clock = 0;
};

FeedbackConfig smallConfig() {
  FeedbackConfig C;
  C.TargetSamplingNanos = millisToNanos(10);
  C.TargetProductionNanos = secondsToNanos(1);
  return C;
}

/// Every Switch event must carry a valid reason.
void expectSwitchesWellFormed(const obs::DecisionLog &Log) {
  for (const obs::DecisionEvent &E : Log.events()) {
    if (E.Kind != obs::DecisionKind::Switch)
      continue;
    EXPECT_NE(E.Reason, obs::SwitchReason::None);
    EXPECT_FALSE(E.Label.empty());
  }
}

TEST(ObsControllerTest, EveryProductionDecisionIsLogged) {
  MockRunner R(3, secondsToNanos(3),
               [](unsigned V, Nanos) { return V == 1 ? 0.05 : 0.5; });
  obs::DecisionLog Log;
  FeedbackController C(smallConfig(), nullptr, &Log);
  const SectionExecutionTrace T = C.executeSection(R, "S");

  // One Switch event per production decision, in order, with the chosen
  // version; one Sample event per sampled interval.
  std::vector<unsigned> Switched;
  for (const obs::DecisionEvent &E : Log.events())
    if (E.Kind == obs::DecisionKind::Switch) {
      Switched.push_back(E.Version);
      EXPECT_EQ(E.Reason, obs::SwitchReason::BeatBest);
      EXPECT_EQ(E.Section, "S");
      EXPECT_TRUE(std::isfinite(E.Overhead));
    }
  EXPECT_EQ(Switched, T.ChosenVersions);
  EXPECT_EQ(Log.count(obs::DecisionKind::Sample), T.SampledIntervals);
  expectSwitchesWellFormed(Log);
}

TEST(ObsControllerTest, NullLogChangesNothing) {
  const auto Overhead = [](unsigned V, Nanos) {
    return V == 1 ? 0.05 : 0.5;
  };
  MockRunner R1(3, secondsToNanos(3), Overhead);
  MockRunner R2(3, secondsToNanos(3), Overhead);
  obs::DecisionLog Log;
  FeedbackController CLogged(smallConfig(), nullptr, &Log);
  FeedbackController CPlain(smallConfig(), nullptr, nullptr);
  const SectionExecutionTrace TL = CLogged.executeSection(R1, "S");
  const SectionExecutionTrace TP = CPlain.executeSection(R2, "S");
  EXPECT_EQ(TL.ChosenVersions, TP.ChosenVersions);
  EXPECT_EQ(TL.SampledIntervals, TP.SampledIntervals);
  EXPECT_EQ(TL.durationNanos(), TP.durationNanos());
}

TEST(ObsControllerTest, HysteresisHoldIsLoggedWithReason) {
  // Version 0 wins the first phase; version 1 later edges ahead but within
  // the hysteresis margin, so the incumbent must be held.
  MockRunner R(2, secondsToNanos(4), [](unsigned V, Nanos Now) {
    if (V == 0)
      return 0.10;
    return Now < secondsToNanos(1) ? 0.50 : 0.07;
  });
  FeedbackConfig Config = smallConfig();
  Config.SwitchHysteresis = 0.10;
  obs::DecisionLog Log;
  FeedbackController C(Config, nullptr, &Log);
  const SectionExecutionTrace T = C.executeSection(R, "S");

  ASSERT_GT(T.HysteresisHolds, 0u);
  unsigned Held = 0;
  for (const obs::DecisionEvent &E : Log.events())
    if (E.Kind == obs::DecisionKind::Switch &&
        E.Reason == obs::SwitchReason::HysteresisHeld) {
      ++Held;
      EXPECT_EQ(E.Version, 0u); // The incumbent stays.
    }
  EXPECT_EQ(Held, T.HysteresisHolds);
  expectSwitchesWellFormed(Log);
}

TEST(ObsControllerTest, DegenerateSamplingLogsFallback) {
  DegenerateRunner R(secondsToNanos(2));
  // Spanning mode: a fully degenerate sampling phase falls back to the
  // first version in sampling order (per-occurrence mode with no prior
  // good version simply gives up).
  FeedbackConfig Config = smallConfig();
  Config.SpanSectionExecutions = true;
  obs::DecisionLog Log;
  FeedbackController C(Config, nullptr, &Log);
  const SectionExecutionTrace T = C.executeSection(R, "S");

  EXPECT_GT(T.DegenerateIntervals, 0u);
  ASSERT_GT(Log.count(obs::DecisionKind::Switch), 0u);
  for (const obs::DecisionEvent &E : Log.events()) {
    if (E.Kind == obs::DecisionKind::Sample) {
      EXPECT_TRUE(std::isnan(E.Overhead)); // Degenerate sentinel.
    }
    if (E.Kind == obs::DecisionKind::Switch) {
      EXPECT_EQ(E.Reason, obs::SwitchReason::Fallback);
      EXPECT_TRUE(std::isnan(E.Overhead)); // No measurement to base it on.
    }
  }
}

TEST(ObsControllerTest, DriftResampleIsLogged) {
  // Version 0 samples best, then degrades mid-production; the drift guard
  // must cut production short and the log must record why.
  MockRunner R(2, secondsToNanos(6), [](unsigned V, Nanos Now) {
    if (V == 0)
      return Now < millisToNanos(500) ? 0.05 : 0.60;
    return 0.30;
  });
  FeedbackConfig Config = smallConfig();
  Config.DriftResampleThreshold = 0.10;
  Config.ProductionSliceNanos = millisToNanos(100);
  obs::DecisionLog Log;
  FeedbackController C(Config, nullptr, &Log);
  const SectionExecutionTrace T = C.executeSection(R, "S");

  ASSERT_GT(T.EarlyResamples, 0u);
  EXPECT_EQ(Log.count(obs::DecisionKind::DriftResample), T.EarlyResamples);
  for (const obs::DecisionEvent &E : Log.events())
    if (E.Kind == obs::DecisionKind::DriftResample) {
      EXPECT_TRUE(std::isfinite(E.Overhead));
    }
}

TEST(ObsControllerTest, SpanningModeLogsSwitchesAcrossOccurrences) {
  // Occurrences far shorter than a sampling phase: only spanning mode ever
  // completes sampling, and its decisions must land in the log.
  FeedbackConfig Config = smallConfig();
  Config.SpanSectionExecutions = true;
  Config.TargetProductionNanos = millisToNanos(200);
  obs::DecisionLog Log;
  FeedbackController C(Config, nullptr, &Log);
  unsigned TotalChosen = 0;
  for (int I = 0; I < 200; ++I) {
    MockRunner R(2, millisToNanos(5),
                 [](unsigned V, Nanos) { return V == 0 ? 0.05 : 0.4; });
    const SectionExecutionTrace T = C.executeSection(R, "S");
    TotalChosen += static_cast<unsigned>(T.ChosenVersions.size());
  }
  ASSERT_GT(Log.count(obs::DecisionKind::Switch), 0u);
  EXPECT_EQ(Log.count(obs::DecisionKind::Switch), TotalChosen);
  expectSwitchesWellFormed(Log);
}

TEST(ObsControllerTest, FbMetricsMirrorTheTrace) {
  obs::MetricsRegistry &M = obs::globalMetrics();
  const uint64_t Samples0 = M.counterValue("fb.sampled_intervals");
  const uint64_t Switches0 = M.counterValue("fb.switches");
  MockRunner R(3, secondsToNanos(3),
               [](unsigned V, Nanos) { return V == 1 ? 0.05 : 0.5; });
  FeedbackController C(smallConfig());
  const SectionExecutionTrace T = C.executeSection(R, "S");
  EXPECT_EQ(M.counterValue("fb.sampled_intervals") - Samples0,
            T.SampledIntervals);
  EXPECT_EQ(M.counterValue("fb.switches") - Switches0,
            T.ChosenVersions.size());
}

// ------------------- Measurement-guard regressions (rt) --------------------

// Regression: isMeasurable() ignored SchedNanos, so a negative scheduling
// measurement could flow into a sampled overhead.
TEST(StatsRegressionTest, NegativeSchedNanosIsUnmeasurable) {
  OverheadStats S;
  S.ExecNanos = 1000;
  EXPECT_TRUE(S.isMeasurable());
  S.SchedNanos = -1;
  EXPECT_FALSE(S.isMeasurable());
}

// Regression: an empty (or fully non-finite) sample set aggregated to 0.0,
// masquerading as a perfect zero-overhead measurement.
TEST(StatsRegressionTest, DegenerateAggregateYieldsNaN) {
  for (OverheadAggregation How :
       {OverheadAggregation::Mean, OverheadAggregation::Median,
        OverheadAggregation::TrimmedMean}) {
    EXPECT_TRUE(std::isnan(aggregateOverheads({}, How)));
    EXPECT_TRUE(std::isnan(aggregateOverheads(
        {std::nan(""), std::numeric_limits<double>::infinity()}, How)));
  }
  // Finite samples still aggregate normally.
  EXPECT_DOUBLE_EQ(
      aggregateOverheads({0.2, 0.4}, OverheadAggregation::Mean), 0.3);
}

// Regression: a ratio clamp (component nanos exceeding ExecNanos) was
// silent; it must now be counted in the metrics registry.
TEST(StatsRegressionTest, OverheadClampIsCounted) {
  obs::MetricsRegistry &M = obs::globalMetrics();
  const uint64_t Before = M.counterValue("rt.overhead.ratio_clamped");
  OverheadStats S;
  S.ExecNanos = 1000;
  S.LockOpNanos = 2000; // Accounting error: components exceed execution.
  EXPECT_DOUBLE_EQ(S.totalOverhead(), 1.0);
  EXPECT_EQ(M.counterValue("rt.overhead.ratio_clamped"), Before + 1);
  // A sane measurement does not count.
  S.LockOpNanos = 500;
  EXPECT_DOUBLE_EQ(S.totalOverhead(), 0.5);
  EXPECT_EQ(M.counterValue("rt.overhead.ratio_clamped"), Before + 1);
}

// ------------------------------ Exporters ----------------------------------

obs::RunTrace sampleTrace() {
  obs::RunTrace Trace;
  Trace.Meta.App = "water";
  Trace.Meta.Policy = "dynamic";
  Trace.Meta.Procs = 4;
  Trace.Meta.TotalNanos = secondsToNanos(12);

  obs::DecisionEvent S;
  S.Kind = obs::DecisionKind::Sample;
  S.TimeNanos = millisToNanos(1);
  S.Section = "INTERF";
  S.Version = 1;
  S.Label = "Bounded";
  S.Overhead = 0.125;
  S.Repeats = 1;
  Trace.Decisions.push_back(S);

  obs::DecisionEvent N;
  N.Kind = obs::DecisionKind::Sample;
  N.TimeNanos = millisToNanos(2);
  N.Section = "INTERF";
  N.Version = 2;
  N.Label = "Aggressive";
  N.Overhead = std::nan(""); // Degenerate sample round-trips as null.
  N.Degenerate = 3;
  Trace.Decisions.push_back(N);

  obs::DecisionEvent W;
  W.Kind = obs::DecisionKind::Switch;
  W.TimeNanos = millisToNanos(3);
  W.Section = "INTERF";
  W.Version = 1;
  W.Label = "Bounded";
  W.Overhead = 0.125;
  W.Reason = obs::SwitchReason::BeatBest;
  Trace.Decisions.push_back(W);

  obs::DecisionEvent D;
  D.Kind = obs::DecisionKind::DriftResample;
  D.TimeNanos = millisToNanos(9);
  D.Section = "INTERF";
  D.Version = 1;
  D.Label = "Bounded";
  D.Overhead = 0.4;
  Trace.Decisions.push_back(D);

  obs::SectionRecord Sec;
  Sec.Section = "INTERF";
  Sec.StartNanos = 0;
  Sec.EndNanos = secondsToNanos(10);
  Sec.AcquireReleasePairs = 1234;
  Sec.LockOpNanos = millisToNanos(40);
  Sec.WaitNanos = millisToNanos(250);
  Sec.SchedNanos = millisToNanos(5);
  Sec.ExecNanos = secondsToNanos(9);
  Sec.SamplingPhases = 2;
  Sec.SampledIntervals = 6;
  Sec.DegenerateIntervals = 1;
  Sec.EarlyResamples = 1;
  Sec.HysteresisHolds = 0;
  Trace.Sections.push_back(Sec);

  obs::LockRecord L;
  L.Section = "INTERF";
  L.Object = 17;
  L.Acquires = 900;
  L.Contended = 40;
  L.WaitNanos = millisToNanos(200);
  Trace.Locks.push_back(L);
  return Trace;
}

TEST(ExportTest, JsonlRoundTripsLosslessly) {
  const obs::RunTrace In = sampleTrace();
  std::string Error;
  const std::optional<obs::RunTrace> Out =
      obs::parseJsonl(obs::toJsonl(In), Error);
  ASSERT_TRUE(Out.has_value()) << Error;

  EXPECT_EQ(Out->Meta.App, In.Meta.App);
  EXPECT_EQ(Out->Meta.Policy, In.Meta.Policy);
  EXPECT_EQ(Out->Meta.Procs, In.Meta.Procs);
  EXPECT_EQ(Out->Meta.TotalNanos, In.Meta.TotalNanos);

  ASSERT_EQ(Out->Decisions.size(), In.Decisions.size());
  for (size_t I = 0; I < In.Decisions.size(); ++I) {
    const obs::DecisionEvent &A = In.Decisions[I];
    const obs::DecisionEvent &B = Out->Decisions[I];
    EXPECT_EQ(B.Kind, A.Kind);
    EXPECT_EQ(B.TimeNanos, A.TimeNanos);
    EXPECT_EQ(B.Section, A.Section);
    EXPECT_EQ(B.Version, A.Version);
    EXPECT_EQ(B.Label, A.Label);
    EXPECT_EQ(B.Repeats, A.Repeats);
    EXPECT_EQ(B.Degenerate, A.Degenerate);
    EXPECT_EQ(B.Reason, A.Reason);
    if (std::isnan(A.Overhead))
      EXPECT_TRUE(std::isnan(B.Overhead));
    else
      EXPECT_DOUBLE_EQ(B.Overhead, A.Overhead);
  }

  ASSERT_EQ(Out->Sections.size(), 1u);
  const obs::SectionRecord &Sec = Out->Sections[0];
  EXPECT_EQ(Sec.Section, "INTERF");
  EXPECT_EQ(Sec.AcquireReleasePairs, 1234u);
  EXPECT_EQ(Sec.WaitNanos, millisToNanos(250));
  EXPECT_EQ(Sec.ExecNanos, secondsToNanos(9));
  EXPECT_EQ(Sec.SampledIntervals, 6u);

  ASSERT_EQ(Out->Locks.size(), 1u);
  EXPECT_EQ(Out->Locks[0].Object, 17u);
  EXPECT_EQ(Out->Locks[0].Contended, 40u);
  EXPECT_EQ(Out->Locks[0].WaitNanos, millisToNanos(200));
}

TEST(ExportTest, EveryJsonlLineIsValidJson) {
  const std::string Text = obs::toJsonl(sampleTrace());
  size_t Start = 0, Lines = 0;
  std::string Error;
  while (Start < Text.size()) {
    size_t End = Text.find('\n', Start);
    if (End == std::string::npos)
      End = Text.size();
    const std::string Line = Text.substr(Start, End - Start);
    if (!Line.empty()) {
      ++Lines;
      const auto V = obs::parseJson(Line, Error);
      ASSERT_TRUE(V.has_value()) << Error << " in line: " << Line;
      EXPECT_FALSE(V->getString("type").empty());
      if (Lines == 1) { // The meta line leads and stamps the schema.
        EXPECT_EQ(V->getInt("schema"), obs::TraceSchemaVersion);
      }
    }
    Start = End + 1;
  }
  EXPECT_EQ(Lines, 1 + 4 + 1 + 1u); // meta + decisions + section + lock.
}

TEST(ExportTest, ParserSkipsUnknownLineTypesAndKeys) {
  std::string Text = obs::toJsonl(sampleTrace());
  Text += "{\"type\":\"future-extension\",\"x\":1}\n";
  std::string Error;
  const auto Out = obs::parseJsonl(Text, Error);
  ASSERT_TRUE(Out.has_value()) << Error;
  EXPECT_EQ(Out->Decisions.size(), 4u);
}

TEST(ExportTest, ParserRejectsGarbage) {
  std::string Error;
  EXPECT_FALSE(obs::parseJsonl("not json\n", Error).has_value());
  EXPECT_FALSE(Error.empty());
  // A switch decision without a valid reason is a malformed trace.
  Error.clear();
  const std::string NoReason =
      "{\"type\":\"meta\",\"schema\":1,\"app\":\"a\",\"policy\":\"p\","
      "\"procs\":1,\"total_ns\":1}\n"
      "{\"type\":\"decision\",\"kind\":\"switch\",\"t_ns\":1,"
      "\"section\":\"S\",\"version\":0,\"label\":\"v0\",\"overhead\":0.1}\n";
  EXPECT_FALSE(obs::parseJsonl(NoReason, Error).has_value());
}

TEST(ExportTest, ChromeTraceIsWellFormed) {
  std::string Error;
  const auto V = obs::parseJson(obs::toChromeTrace(sampleTrace()), Error);
  ASSERT_TRUE(V.has_value()) << Error;
  const obs::JsonValue *Events = V->find("traceEvents");
  ASSERT_NE(Events, nullptr);
  ASSERT_EQ(Events->kind(), obs::JsonValue::Kind::Array);
  ASSERT_FALSE(Events->items().empty());
  bool SawSection = false, SawInstant = false, SawCounter = false;
  for (const obs::JsonValue &E : Events->items()) {
    const std::string Ph = E.getString("ph");
    EXPECT_FALSE(Ph.empty());
    if (Ph == "X")
      SawSection = true;
    if (Ph == "i")
      SawInstant = true;
    if (Ph == "C")
      SawCounter = true;
  }
  EXPECT_TRUE(SawSection);
  EXPECT_TRUE(SawInstant);
  EXPECT_TRUE(SawCounter);
}

// ------------------------------- Report ------------------------------------

TEST(ReportTest, RendersTimelineAndTables) {
  const std::string Out = obs::renderReport(sampleTrace());
  EXPECT_NE(Out.find("water"), std::string::npos);
  EXPECT_NE(Out.find("switch"), std::string::npos);
  EXPECT_NE(Out.find("beat-best"), std::string::npos);
  EXPECT_NE(Out.find("Locking overhead"), std::string::npos);
  EXPECT_NE(Out.find("(all sections)"), std::string::npos);
}

TEST(ReportTest, HottestLocksSortsByWaitThenObject) {
  obs::RunTrace Trace = sampleTrace();
  Trace.Locks.clear();
  const auto AddLock = [&Trace](uint64_t Obj, Nanos Wait) {
    obs::LockRecord L;
    L.Section = "INTERF";
    L.Object = Obj;
    L.Acquires = 10;
    L.Contended = 1;
    L.WaitNanos = Wait;
    Trace.Locks.push_back(L);
  };
  AddLock(9, millisToNanos(5));
  AddLock(3, millisToNanos(50)); // Hottest.
  AddLock(7, millisToNanos(5)); // Ties with object 9: lower id first.
  const std::string Out = obs::renderHottestLocksTable(Trace, 10);
  const size_t P3 = Out.find(" 3");
  const size_t P7 = Out.find(" 7");
  const size_t P9 = Out.find(" 9");
  ASSERT_NE(P3, std::string::npos);
  ASSERT_NE(P7, std::string::npos);
  ASSERT_NE(P9, std::string::npos);
  EXPECT_LT(P3, P7);
  EXPECT_LT(P7, P9);
}

// --------------------- End-to-end through the harness ----------------------

TEST(ObsHarnessTest, WaterRunTraceRoundTripsAndMatchesDecisions) {
  auto App = apps::createApp("water", 0.25);
  ASSERT_NE(App, nullptr);
  fb::FeedbackConfig Config;
  Config.SpanSectionExecutions = true;
  Config.TargetSamplingNanos = millisToNanos(2);
  Config.TargetProductionNanos = secondsToNanos(2);

  apps::RunObservation Obs;
  Obs.CollectSectionTraces = true;
  const fb::RunResult Result =
      apps::runApp(*App, 4, apps::VersionSpec::dynamicFeedback(), Config,
                   nullptr, rt::CostModel::dashLike(), nullptr, &Obs);

  // The run made decisions and they landed in the log with valid reasons.
  EXPECT_GT(Obs.Log.count(obs::DecisionKind::Sample), 0u);
  expectSwitchesWellFormed(Obs.Log);

  const obs::RunTrace Trace =
      apps::buildRunTrace("water", 4, "dynamic", Result, &Obs);
  EXPECT_EQ(Trace.Decisions.size(), Obs.Log.size());
  EXPECT_EQ(Trace.Sections.size(), Result.Occurrences.size());
  EXPECT_FALSE(Trace.Locks.empty());

  // The trace's section records reproduce the run's aggregate stats.
  uint64_t Pairs = 0;
  Nanos LockOp = 0, Wait = 0;
  for (const obs::SectionRecord &S : Trace.Sections) {
    Pairs += S.AcquireReleasePairs;
    LockOp += S.LockOpNanos;
    Wait += S.WaitNanos;
  }
  EXPECT_EQ(Pairs, Result.ParallelStats.AcquireReleasePairs);
  EXPECT_EQ(LockOp, Result.ParallelStats.LockOpNanos);
  EXPECT_EQ(Wait, Result.ParallelStats.WaitNanos);

  // Serialize, parse back, and re-render: the report survives the
  // round-trip byte-identically.
  std::string Error;
  const std::optional<obs::RunTrace> Back =
      obs::parseJsonl(obs::toJsonl(Trace), Error);
  ASSERT_TRUE(Back.has_value()) << Error;
  EXPECT_EQ(obs::renderReport(*Back), obs::renderReport(Trace));
}

} // namespace
