//===- tests/IrTest.cpp - Unit tests for the IR layer ----------------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "ir/Clone.h"
#include "ir/Module.h"
#include "ir/Printer.h"
#include "ir/StructuralHash.h"
#include "ir/Verifier.h"

#include <gtest/gtest.h>

using namespace dynfb::ir;

namespace {

/// Builds the paper's Figure 1 program (unsynchronized author form).
struct Figure1 {
  Module M{"fig1"};
  ClassDecl *Body = nullptr;
  unsigned Pos = 0, Sum = 0;
  Method *OneInteraction = nullptr;
  Method *Interactions = nullptr;
  unsigned LoopId = 0;

  Figure1() {
    Body = M.createClass("body");
    Pos = Body->addField("pos");
    Sum = Body->addField("sum");

    OneInteraction = M.createMethod("one_interaction", Body);
    OneInteraction->addParam(Param{"b", Body, false});
    {
      MethodBuilder B(M, OneInteraction);
      const Expr *ThisPos = M.exprFieldRead(Receiver::thisObj(), Pos);
      const Expr *OtherPos = M.exprFieldRead(Receiver::param(0), Pos);
      B.compute({ThisPos, OtherPos});
      B.update(Receiver::thisObj(), Sum, BinOp::Add,
               M.exprExternCall("interact", {ThisPos, OtherPos}));
    }

    Interactions = M.createMethod("interactions", Body);
    Interactions->addParam(Param{"b", Body, true});
    {
      MethodBuilder B(M, Interactions);
      LoopId = B.beginLoop();
      B.call(OneInteraction, Receiver::thisObj(),
             {Receiver::paramIndexed(0, LoopId)});
      B.endLoop();
    }
    M.addSection("FORCES", Interactions);
  }
};

// ---------------------------- Receiver ------------------------------------

TEST(ReceiverTest, EqualityBySemantics) {
  EXPECT_EQ(Receiver::thisObj(), Receiver::thisObj());
  EXPECT_EQ(Receiver::param(1), Receiver::param(1));
  EXPECT_NE(Receiver::param(1), Receiver::param(2));
  EXPECT_NE(Receiver::thisObj(), Receiver::param(0));
  EXPECT_EQ(Receiver::paramIndexed(0, 3), Receiver::paramIndexed(0, 3));
  EXPECT_NE(Receiver::paramIndexed(0, 3), Receiver::paramIndexed(0, 4));
}

TEST(ReceiverTest, InvarianceInLoops) {
  EXPECT_TRUE(Receiver::thisObj().isInvariantIn(5));
  EXPECT_TRUE(Receiver::param(0).isInvariantIn(5));
  EXPECT_FALSE(Receiver::paramIndexed(0, 5).isInvariantIn(5));
  EXPECT_TRUE(Receiver::paramIndexed(0, 4).isInvariantIn(5));
}

// ---------------------------- Module / Builder ----------------------------

TEST(ModuleTest, FindMethodAndSection) {
  Figure1 F;
  EXPECT_EQ(F.M.findMethod("one_interaction"), F.OneInteraction);
  EXPECT_EQ(F.M.findMethod("nope"), nullptr);
  ASSERT_NE(F.M.findSection("FORCES"), nullptr);
  EXPECT_EQ(F.M.findSection("FORCES")->IterMethod, F.Interactions);
  EXPECT_EQ(F.M.findSection("nope"), nullptr);
}

TEST(ModuleTest, LoopIdsAreUnique) {
  Module M("m");
  EXPECT_EQ(M.nextLoopId(), 0u);
  EXPECT_EQ(M.nextLoopId(), 1u);
  EXPECT_EQ(M.nextCostClass(), 0u);
  EXPECT_EQ(M.nextCostClass(), 1u);
}

TEST(BuilderTest, NestedLoopsBuildCorrectStructure) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  C->addField("f");
  Method *Meth = M.createMethod("m", C);
  MethodBuilder B(M, Meth);
  const unsigned Outer = B.beginLoop();
  const unsigned Inner = B.beginLoop();
  B.compute();
  B.endLoop();
  B.update(Receiver::thisObj(), 0, BinOp::Add, M.exprConst(1.0));
  B.endLoop();
  EXPECT_NE(Outer, Inner);
  ASSERT_EQ(Meth->body().size(), 1u);
  const auto *OuterLoop = stmtDynCast<LoopStmt>(Meth->body()[0]);
  ASSERT_NE(OuterLoop, nullptr);
  ASSERT_EQ(OuterLoop->Body.size(), 2u);
  EXPECT_EQ(OuterLoop->Body[0]->kind(), StmtKind::Loop);
  EXPECT_EQ(OuterLoop->Body[1]->kind(), StmtKind::Update);
}

// ---------------------------- Printer -------------------------------------

TEST(PrinterTest, Figure1RendersLikeThePaper) {
  Figure1 F;
  const std::string Text = printMethod(*F.OneInteraction);
  EXPECT_NE(Text.find("void body::one_interaction(body *b)"),
            std::string::npos);
  EXPECT_NE(Text.find("this->sum = this->sum + interact(this->pos, b->pos)"),
            std::string::npos);
  const std::string Loop = printMethod(*F.Interactions);
  EXPECT_NE(Loop.find("one_interaction"), std::string::npos);
  EXPECT_NE(Loop.find("for i"), std::string::npos);
}

TEST(PrinterTest, ModulePrintsClassesAndSections) {
  Figure1 F;
  const std::string Text = printModule(F.M);
  EXPECT_NE(Text.find("class body { lock mutex;"), std::string::npos);
  EXPECT_NE(Text.find("parallel section FORCES"), std::string::npos);
}

// ---------------------------- Verifier ------------------------------------

TEST(VerifierTest, WellFormedModulePasses) {
  Figure1 F;
  EXPECT_TRUE(verifyModule(F.M).empty());
}

TEST(VerifierTest, UnbalancedRegionRejected) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  C->addField("f");
  Method *Meth = M.createMethod("m", C);
  Meth->body().push_back(M.createAcquire(Receiver::thisObj()));
  const auto Errors = verifyMethod(*Meth);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("not balanced"), std::string::npos);
}

TEST(VerifierTest, ReleaseWithoutAcquireRejected) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Meth = M.createMethod("m", C);
  Meth->body().push_back(M.createRelease(Receiver::thisObj()));
  EXPECT_FALSE(verifyMethod(*Meth).empty());
}

TEST(VerifierTest, SelfDeadlockRejected) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Meth = M.createMethod("m", C);
  Meth->body().push_back(M.createAcquire(Receiver::thisObj()));
  Meth->body().push_back(M.createAcquire(Receiver::thisObj()));
  Meth->body().push_back(M.createRelease(Receiver::thisObj()));
  Meth->body().push_back(M.createRelease(Receiver::thisObj()));
  const auto Errors = verifyMethod(*Meth);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("self-deadlock"), std::string::npos);
}

TEST(VerifierTest, RegionMayNotStraddleLoopBoundary) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Meth = M.createMethod("m", C);
  // acquire inside the loop, release outside: ill-formed.
  LoopStmt *L =
      M.createLoop(M.nextLoopId(), {M.createAcquire(Receiver::thisObj())});
  Meth->body().push_back(L);
  Meth->body().push_back(M.createRelease(Receiver::thisObj()));
  EXPECT_FALSE(verifyMethod(*Meth).empty());
}

TEST(VerifierTest, ParamIndexedOutsideLoopRejected) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  C->addField("f");
  Method *Meth = M.createMethod("m", C);
  Meth->addParam(Param{"a", C, true});
  Meth->body().push_back(M.createUpdate(Receiver::paramIndexed(0, 7), 0,
                                        BinOp::Add, M.exprConst(1.0)));
  const auto Errors = verifyMethod(*Meth);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("non-enclosing loop"), std::string::npos);
}

TEST(VerifierTest, CallArityMismatchRejected) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  Method *Callee = M.createMethod("callee", C);
  Callee->addParam(Param{"x", C, false});
  Method *Caller = M.createMethod("caller", C);
  Caller->body().push_back(
      M.createCall(Callee, Receiver::thisObj(), {})); // missing object arg
  EXPECT_FALSE(verifyMethod(*Caller).empty());
}

TEST(VerifierTest, AtomicityViolationDetected) {
  Figure1 F;
  // The author form has no locks at all, so the update is unprotected.
  const auto Errors = verifyAtomicity(*F.Interactions);
  ASSERT_FALSE(Errors.empty());
  EXPECT_NE(Errors[0].find("atomicity violation"), std::string::npos);
}

TEST(VerifierTest, AtomicityHoldsWithDirectRegion) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  C->addField("f");
  Method *Meth = M.createMethod("m", C);
  Meth->body().push_back(M.createAcquire(Receiver::thisObj()));
  Meth->body().push_back(
      M.createUpdate(Receiver::thisObj(), 0, BinOp::Add, M.exprConst(1.0)));
  Meth->body().push_back(M.createRelease(Receiver::thisObj()));
  EXPECT_TRUE(verifyAtomicity(*Meth).empty());
}

TEST(VerifierTest, AtomicityTranslatesAcrossCalls) {
  // Caller holds this's lock and calls a stripped callee updating `this`
  // (the paper's Figure 2 shape).
  Module M("m");
  ClassDecl *C = M.createClass("c");
  C->addField("f");
  Method *Callee = M.createMethod("upd", C);
  Callee->body().push_back(
      M.createUpdate(Receiver::thisObj(), 0, BinOp::Add, M.exprConst(1.0)));
  Method *Caller = M.createMethod("caller", C);
  Caller->body().push_back(M.createAcquire(Receiver::thisObj()));
  Caller->body().push_back(M.createCall(Callee, Receiver::thisObj(), {}));
  Caller->body().push_back(M.createRelease(Receiver::thisObj()));
  EXPECT_TRUE(verifyAtomicity(*Caller).empty());
  // Without the region the same call chain is a violation.
  Method *Bare = M.createMethod("bare", C);
  Bare->body().push_back(M.createCall(Callee, Receiver::thisObj(), {}));
  EXPECT_FALSE(verifyAtomicity(*Bare).empty());
}

// ---------------------------- Clone ---------------------------------------

TEST(CloneTest, ClonesClosureAndRetargetsCalls) {
  Figure1 F;
  const CloneResult CR = cloneMethodClosure(F.M, F.Interactions, "$x");
  ASSERT_NE(CR.Root, nullptr);
  EXPECT_NE(CR.Root, F.Interactions);
  EXPECT_TRUE(CR.Root->isSynthetic());
  EXPECT_EQ(CR.Map.size(), 2u); // interactions + one_interaction
  // The cloned loop's call targets the cloned callee.
  const auto *L = stmtDynCast<LoopStmt>(CR.Root->body()[0]);
  ASSERT_NE(L, nullptr);
  const auto *Call = stmtDynCast<CallStmt>(L->Body[0]);
  ASSERT_NE(Call, nullptr);
  EXPECT_EQ(Call->callee(), CR.Map.at(F.OneInteraction));
  // Loop ids are preserved.
  EXPECT_EQ(L->LoopId, F.LoopId);
}

TEST(CloneTest, CloneIsStructurallyEqualToOriginal) {
  Figure1 F;
  const CloneResult CR = cloneMethodClosure(F.M, F.Interactions, "$y");
  EXPECT_TRUE(structurallyEqual(*F.Interactions, *CR.Root));
  EXPECT_EQ(structuralHash(*F.Interactions), structuralHash(*CR.Root));
}

// ---------------------------- StructuralHash ------------------------------

TEST(StructuralHashTest, DifferentBodiesDiffer) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  C->addField("f");
  Method *A = M.createMethod("a", C);
  A->body().push_back(
      M.createUpdate(Receiver::thisObj(), 0, BinOp::Add, M.exprConst(1.0)));
  Method *B = M.createMethod("b", C);
  B->body().push_back(
      M.createUpdate(Receiver::thisObj(), 0, BinOp::Mul, M.exprConst(1.0)));
  EXPECT_FALSE(structurallyEqual(*A, *B));
  EXPECT_NE(structuralHash(*A), structuralHash(*B));
}

TEST(StructuralHashTest, NamesDoNotMatter) {
  Module M("m");
  ClassDecl *C = M.createClass("c");
  C->addField("f");
  Method *A = M.createMethod("first", C);
  A->body().push_back(
      M.createUpdate(Receiver::thisObj(), 0, BinOp::Add, M.exprConst(1.0)));
  Method *B = M.createMethod("second", C);
  B->body().push_back(
      M.createUpdate(Receiver::thisObj(), 0, BinOp::Add, M.exprConst(1.0)));
  EXPECT_TRUE(structurallyEqual(*A, *B));
}

TEST(StructuralHashTest, ExpressionEquality) {
  Module M("m");
  const Expr *A = M.exprBinary(BinOp::Add, M.exprConst(1.0), M.exprConst(2.0));
  const Expr *B = M.exprBinary(BinOp::Add, M.exprConst(1.0), M.exprConst(2.0));
  const Expr *C = M.exprBinary(BinOp::Sub, M.exprConst(1.0), M.exprConst(2.0));
  EXPECT_TRUE(structurallyEqual(A, B));
  EXPECT_FALSE(structurallyEqual(A, C));
  EXPECT_EQ(structuralHash(A), structuralHash(B));
}

} // namespace
