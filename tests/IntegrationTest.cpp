//===- tests/IntegrationTest.cpp - End-to-end pipeline behaviour ----------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
// Scaled-down versions of the paper's experiments, asserting the behaviours
// the full-size benches reproduce: which policy wins where, that dynamic
// feedback tracks the best policy, and that the instrumentation observes
// the structures (false exclusion, serialization) the paper describes.
//
//===----------------------------------------------------------------------===//

#include "apps/barnes_hut/BarnesHutApp.h"
#include "apps/string_tomo/StringApp.h"
#include "apps/water/WaterApp.h"
#include "fb/Driver.h"
#include "xform/Policy.h"

#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::apps;
using namespace dynfb::fb;
using namespace dynfb::xform;

namespace {

const rt::CostModel CM = rt::CostModel::dashLike();

FeedbackConfig testConfig() {
  FeedbackConfig C;
  C.TargetSamplingNanos = rt::millisToNanos(10);
  C.TargetProductionNanos = rt::secondsToNanos(100);
  return C;
}

/// Runs one executable flavour and returns the full result.
RunResult runFlavour(const App &App, unsigned Procs, Flavour F,
                     PolicyKind Policy = PolicyKind::Original,
                     FeedbackConfig Config = testConfig()) {
  auto Backend = App.makeSimBackend(Procs, CM, F, Policy);
  RunOptions Options;
  Options.Mode = F == Flavour::Dynamic ? ExecMode::Dynamic : ExecMode::Fixed;
  Options.Config = Config;
  return runSchedule(*Backend, App.schedule(), Options);
}

double runSeconds(const App &App, unsigned Procs, Flavour F,
                  PolicyKind Policy = PolicyKind::Original) {
  return rt::nanosToSeconds(runFlavour(App, Procs, F, Policy).TotalNanos);
}

// ---------------------------- Barnes-Hut -----------------------------------

class BarnesHutIntegration : public ::testing::Test {
protected:
  static bh::BarnesHutApp &app() {
    static bh::BarnesHutApp *App = [] {
      bh::BarnesHutConfig Config;
      Config.scale(1024.0 / 16384.0);
      return new bh::BarnesHutApp(Config);
    }();
    return *App;
  }
};

TEST_F(BarnesHutIntegration, PolicyOrderingMatchesPaper) {
  // Paper Table 2: Aggressive < Bounded < Original at every processor count.
  for (unsigned Procs : {1u, 8u}) {
    const double Orig =
        runSeconds(app(), Procs, Flavour::Fixed, PolicyKind::Original);
    const double Bnd =
        runSeconds(app(), Procs, Flavour::Fixed, PolicyKind::Bounded);
    const double Agg =
        runSeconds(app(), Procs, Flavour::Fixed, PolicyKind::Aggressive);
    EXPECT_LT(Agg, Bnd) << "procs=" << Procs;
    EXPECT_LT(Bnd, Orig) << "procs=" << Procs;
  }
}

TEST_F(BarnesHutIntegration, DynamicTracksAggressive) {
  const double Agg =
      runSeconds(app(), 8, Flavour::Fixed, PolicyKind::Aggressive);
  const double Dyn = runSeconds(app(), 8, Flavour::Dynamic);
  EXPECT_LT(Dyn, 1.15 * Agg)
      << "dynamic feedback should be within a few percent of the best "
         "policy";
  // And strictly better than the statically wrong choice.
  const double Orig =
      runSeconds(app(), 8, Flavour::Fixed, PolicyKind::Original);
  EXPECT_LT(Dyn, Orig);
}

TEST_F(BarnesHutIntegration, DynamicChoosesAggressiveForProduction) {
  const RunResult R = runFlavour(app(), 8, Flavour::Dynamic);
  const VersionedSection *VS = app().program().find("FORCES");
  const unsigned AggIdx = VS->indexFor(PolicyKind::Aggressive);
  for (const SectionExecutionTrace &T : R.Occurrences) {
    ASSERT_FALSE(T.ChosenVersions.empty());
    EXPECT_EQ(*T.dominantVersion(), AggIdx);
  }
}

TEST_F(BarnesHutIntegration, NoFalseExclusion) {
  // Paper: "the synchronization optimizations introduced no significant
  // false exclusion" -- per-body locks never contend.
  const RunResult R =
      runFlavour(app(), 8, Flavour::Fixed, PolicyKind::Aggressive);
  EXPECT_EQ(R.ParallelStats.FailedAcquires, 0u);
  EXPECT_EQ(R.ParallelStats.WaitNanos, 0);
}

TEST_F(BarnesHutIntegration, AllVersionsScaleSimilarly) {
  for (PolicyKind P : AllPolicies) {
    const double T1 = runSeconds(app(), 1, Flavour::Fixed, P);
    const double T8 = runSeconds(app(), 8, Flavour::Fixed, P);
    const double Speedup = T1 / T8;
    EXPECT_GT(Speedup, 4.0) << policyName(P);
    EXPECT_LT(Speedup, 8.1) << policyName(P);
  }
}

TEST_F(BarnesHutIntegration, SerialFlavourHasNoLockOps) {
  const RunResult R = runFlavour(app(), 1, Flavour::Serial);
  EXPECT_EQ(R.ParallelStats.AcquireReleasePairs, 0u);
  EXPECT_EQ(R.ParallelStats.LockOpNanos, 0);
}

TEST_F(BarnesHutIntegration, LockingOverheadOrdering) {
  // Paper Table 3 structure: pairs(Original) ~ 2x pairs(Bounded), and
  // Aggressive executes orders of magnitude fewer pairs.
  const auto Pairs = [&](PolicyKind P) {
    return runFlavour(app(), 8, Flavour::Fixed, P)
        .ParallelStats.AcquireReleasePairs;
  };
  const uint64_t Orig = Pairs(PolicyKind::Original);
  const uint64_t Bnd = Pairs(PolicyKind::Bounded);
  const uint64_t Agg = Pairs(PolicyKind::Aggressive);
  EXPECT_EQ(Orig, 2 * Bnd);
  EXPECT_EQ(Agg, 2 * app().bodies().size()); // One pair/iteration, 2 runs.
  EXPECT_GT(Bnd / Agg, 10u);
}

// ---------------------------- Water ---------------------------------------

class WaterIntegration : public ::testing::Test {
protected:
  static water::WaterApp &app() {
    // Full paper scale: the Water simulation is cheap enough to test
    // unscaled, which keeps the paper's sampling/production proportions.
    static water::WaterApp *App = new water::WaterApp(water::WaterConfig{});
    return *App;
  }
};

TEST_F(WaterIntegration, AggressiveBestAtOneProcessor) {
  // Paper Table 7: "For one processor, the Aggressive version performs the
  // best."
  const double Orig =
      runSeconds(app(), 1, Flavour::Fixed, PolicyKind::Original);
  const double Agg =
      runSeconds(app(), 1, Flavour::Fixed, PolicyKind::Aggressive);
  EXPECT_LT(Agg, Orig);
}

TEST_F(WaterIntegration, AggressiveFailsToScale) {
  // Paper: "As the number of processors increases, the Aggressive version
  // fails to scale" -- POTENG's false exclusion serializes it.
  const double Bnd =
      runSeconds(app(), 8, Flavour::Fixed, PolicyKind::Bounded);
  const double Agg =
      runSeconds(app(), 8, Flavour::Fixed, PolicyKind::Aggressive);
  EXPECT_GT(Agg, 1.5 * Bnd);

  const double Agg1 =
      runSeconds(app(), 1, Flavour::Fixed, PolicyKind::Aggressive);
  EXPECT_LT(Agg1 / Agg, 3.0) << "Aggressive speedup should saturate";
}

TEST_F(WaterIntegration, BoundedBestAtEightProcessors) {
  const double Orig =
      runSeconds(app(), 8, Flavour::Fixed, PolicyKind::Original);
  const double Bnd =
      runSeconds(app(), 8, Flavour::Fixed, PolicyKind::Bounded);
  const double Agg =
      runSeconds(app(), 8, Flavour::Fixed, PolicyKind::Aggressive);
  EXPECT_LT(Bnd, Orig);
  EXPECT_LT(Bnd, Agg);
}

TEST_F(WaterIntegration, DynamicTracksBest) {
  const double Orig =
      runSeconds(app(), 8, Flavour::Fixed, PolicyKind::Original);
  const double Bnd =
      runSeconds(app(), 8, Flavour::Fixed, PolicyKind::Bounded);
  const double Agg =
      runSeconds(app(), 8, Flavour::Fixed, PolicyKind::Aggressive);
  const double Dyn = runSeconds(app(), 8, Flavour::Dynamic);
  EXPECT_LT(Dyn, 1.1 * Bnd);
  EXPECT_LT(Dyn, Orig);
  EXPECT_LT(Dyn, Agg);
}

TEST_F(WaterIntegration, DynamicPicksPerSectionBestAtEightProcessors) {
  const RunResult R = runFlavour(app(), 8, Flavour::Dynamic);
  const VersionedSection *Interf = app().program().find("INTERF");
  const VersionedSection *Poteng = app().program().find("POTENG");
  const unsigned InterfBest = Interf->indexFor(PolicyKind::Bounded);
  const unsigned PotengBest = Poteng->indexFor(PolicyKind::Original);
  for (const SectionExecutionTrace &T : R.Occurrences) {
    if (T.ChosenVersions.empty())
      continue;
    if (T.SectionName == "INTERF")
      EXPECT_EQ(*T.dominantVersion(), InterfBest);
    else
      EXPECT_EQ(*T.dominantVersion(), PotengBest);
  }
}

TEST_F(WaterIntegration, DynamicPicksAggressiveAtOneProcessor) {
  // Paper: "At one processor, the Dynamic version executes approximately
  // the same number of acquire and release constructs as the Aggressive
  // version."
  const RunResult R = runFlavour(app(), 1, Flavour::Dynamic);
  const VersionedSection *Poteng = app().program().find("POTENG");
  const unsigned AggIdx = Poteng->indexFor(PolicyKind::Aggressive);
  for (const SectionExecutionTrace &T : R.Occurrences) {
    if (T.SectionName != "POTENG" || T.ChosenVersions.empty())
      continue;
    EXPECT_EQ(*T.dominantVersion(), AggIdx);
  }
}

TEST_F(WaterIntegration, WaitingProportionExposesFalseExclusion) {
  // Paper Figure 7: waiting overhead is the primary performance loss of the
  // Aggressive version and grows with the processor count.
  const auto Waiting = [&](PolicyKind P, unsigned Procs) {
    return runFlavour(app(), Procs, Flavour::Fixed, P)
        .ParallelStats.waitingProportion();
  };
  EXPECT_LT(Waiting(PolicyKind::Bounded, 8), 0.1);
  EXPECT_GT(Waiting(PolicyKind::Aggressive, 8), 0.4);
  EXPECT_GT(Waiting(PolicyKind::Aggressive, 8),
            Waiting(PolicyKind::Aggressive, 2));
}

TEST_F(WaterIntegration, EffectiveSamplingIntervalLargeWhenSerialized) {
  // Paper Tables 11/12: the Aggressive version's minimum effective sampling
  // interval in POTENG is much larger because the policy serializes the
  // computation.
  FeedbackConfig Config = testConfig();
  Config.TargetSamplingNanos = rt::millisToNanos(0.1);
  const RunResult R = runFlavour(app(), 8, Flavour::Dynamic,
                                 PolicyKind::Original, Config);
  for (const SectionExecutionTrace &T : R.Occurrences) {
    if (T.SectionName != "POTENG")
      continue;
    const auto OrigIt = T.EffectiveSamplingByVersion.find("Original/Bounded");
    const auto AggIt = T.EffectiveSamplingByVersion.find("Aggressive");
    ASSERT_NE(OrigIt, T.EffectiveSamplingByVersion.end());
    ASSERT_NE(AggIt, T.EffectiveSamplingByVersion.end());
    EXPECT_GT(AggIt->second.mean(), 2.0 * OrigIt->second.mean());
  }
}

// ---------------------------- String ---------------------------------------

class StringIntegration : public ::testing::Test {
protected:
  static string_tomo::StringApp &app() {
    static string_tomo::StringApp *App = [] {
      string_tomo::StringConfig Config;
      Config.NumRays = 128;
      return new string_tomo::StringApp(Config);
    }();
    return *App;
  }
};

TEST_F(StringIntegration, AggressiveBestAndDynamicTracks) {
  const double Orig =
      runSeconds(app(), 8, Flavour::Fixed, PolicyKind::Original);
  const double Bnd =
      runSeconds(app(), 8, Flavour::Fixed, PolicyKind::Bounded);
  const double Agg =
      runSeconds(app(), 8, Flavour::Fixed, PolicyKind::Aggressive);
  EXPECT_LT(Agg, Bnd);
  EXPECT_LT(Bnd, Orig);
  const double Dyn = runSeconds(app(), 8, Flavour::Dynamic);
  EXPECT_LT(Dyn, 1.15 * Agg);
}

TEST_F(StringIntegration, SharedModelContentionGrowsWithProcessors) {
  const auto Waiting = [&](unsigned Procs) {
    return runFlavour(app(), Procs, Flavour::Fixed, PolicyKind::Original)
        .ParallelStats.waitingProportion();
  };
  EXPECT_EQ(Waiting(1), 0.0);
  EXPECT_GT(Waiting(16), Waiting(4));
}

// ---------------------------- Cross-cutting --------------------------------

TEST(IntegrationMisc, SampledOverheadsAreStableOverTime) {
  // Paper Figures 5/8/9: the measured overheads stay relatively stable.
  bh::BarnesHutConfig Config;
  Config.NumBodies = 1024;
  bh::BarnesHutApp App(Config);
  FeedbackConfig FC = testConfig();
  FC.TargetSamplingNanos = rt::millisToNanos(5);
  FC.TargetProductionNanos = rt::secondsToNanos(2);
  const RunResult R = runFlavour(App, 8, Flavour::Dynamic,
                                 PolicyKind::Original, FC);
  const SeriesSet Merged = R.mergedOverheadSeries("FORCES");
  for (const Series &S : Merged.all()) {
    if (S.size() < 3)
      continue;
    RunningStat Stat;
    for (double V : S.Values)
      Stat.add(V);
    EXPECT_LT(Stat.stddev(), 0.05)
        << "overhead series " << S.Label << " should be stable";
  }
}

TEST(IntegrationMisc, EarlyCutoffReducesSampledIntervals) {
  water::WaterConfig Config;
  Config.NumMolecules = 64;
  water::WaterApp App(Config);

  FeedbackConfig Plain = testConfig();
  FeedbackConfig Cutoff = testConfig();
  Cutoff.EarlyCutoff = true;
  Cutoff.EarlyCutoffThreshold = 0.05;

  const RunResult A = runFlavour(App, 8, Flavour::Dynamic,
                                 PolicyKind::Original, Plain);
  const RunResult B = runFlavour(App, 8, Flavour::Dynamic,
                                 PolicyKind::Original, Cutoff);
  unsigned SampledPlain = 0, SampledCutoff = 0, Skipped = 0;
  for (const auto &T : A.Occurrences)
    SampledPlain += T.SampledIntervals;
  for (const auto &T : B.Occurrences) {
    SampledCutoff += T.SampledIntervals;
    Skipped += T.SkippedByCutoff;
  }
  EXPECT_LT(SampledCutoff, SampledPlain);
  EXPECT_GT(Skipped, 0u);
}

TEST(IntegrationMisc, DeterministicEndToEnd) {
  water::WaterConfig Config;
  Config.NumMolecules = 32;
  auto Run = [&] {
    water::WaterApp App(Config);
    return runFlavour(App, 4, Flavour::Dynamic).TotalNanos;
  };
  EXPECT_EQ(Run(), Run());
}

} // namespace
