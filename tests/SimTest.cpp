//===- tests/SimTest.cpp - Unit tests for the machine simulator ------------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "ir/Builder.h"
#include "sim/Backend.h"
#include "sim/SectionSim.h"

#include <array>
#include <gtest/gtest.h>
#include <limits>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::rt;
using namespace dynfb::sim;

namespace {

constexpr Nanos Unbounded = std::numeric_limits<Nanos>::max() / 4;

/// A section whose iterations are: compute D; acquire(lock); compute H;
/// release(lock). The lock is either private per iteration or one shared
/// object, controlled by the binding.
struct ToyWorkload {
  Module M{"toy"};
  Method *Entry = nullptr;

  ToyWorkload() {
    ClassDecl *C = M.createClass("c");
    const unsigned F = C->addField("f");
    Entry = M.createMethod("work", C);
    MethodBuilder B(M, Entry);
    B.compute();
    B.acquire(Receiver::thisObj());
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
    B.release(Receiver::thisObj());
  }
};

class ToyBinding final : public DataBinding {
public:
  uint64_t Iterations = 8;
  uint32_t Objects = 8;
  bool SharedLock = false; ///< All iterations lock object 0.
  bool Cacheable = false;  ///< Advertise stable per-iteration ops sequences.
  Nanos ComputeCost = 100000; // 100 us

  uint64_t iterationCount() const override { return Iterations; }
  uint32_t objectCount() const override { return Objects; }
  ObjectId thisObject(uint64_t Iter) const override {
    return SharedLock ? 0 : static_cast<ObjectId>(Iter % Objects);
  }
  std::vector<ObjRef> sectionArgs(uint64_t) const override { return {}; }
  ObjectId elementOf(ArrayId, uint64_t, const LoopCtx &) const override {
    return 0;
  }
  uint64_t tripCount(unsigned, const LoopCtx &) const override { return 1; }
  Nanos computeNanos(unsigned, const LoopCtx &) const override {
    return ComputeCost;
  }
  int64_t iterationClass(uint64_t Iter) const override {
    return Cacheable ? static_cast<int64_t>(Iter) : -1;
  }
};

/// Field-by-field interval report equality (IntervalReport carries no
/// operator==); bitwise agreement is the contract reused simulator state
/// must honor.
void expectReportsIdentical(const IntervalReport &A, const IntervalReport &B) {
  EXPECT_EQ(A.EffectiveNanos, B.EffectiveNanos);
  EXPECT_EQ(A.Finished, B.Finished);
  EXPECT_EQ(A.InjectedNanos, B.InjectedNanos);
  EXPECT_EQ(A.Stats.AcquireReleasePairs, B.Stats.AcquireReleasePairs);
  EXPECT_EQ(A.Stats.FailedAcquires, B.Stats.FailedAcquires);
  EXPECT_EQ(A.Stats.LockOpNanos, B.Stats.LockOpNanos);
  EXPECT_EQ(A.Stats.WaitNanos, B.Stats.WaitNanos);
  EXPECT_EQ(A.Stats.SchedNanos, B.Stats.SchedNanos);
  EXPECT_EQ(A.Stats.ExecNanos, B.Stats.ExecNanos);
}

TEST(SimTest, SingleProcessorTimingIsExact) {
  ToyWorkload W;
  ToyBinding B;
  B.Iterations = 4;
  CostModel CM;
  SimMachine Machine(1, CM);
  SimSectionRunner Runner(Machine, B,
                          {SimVersion{"only", W.Entry}}, false);

  const IntervalReport R = Runner.runInterval(0, Unbounded);
  EXPECT_TRUE(R.Finished);
  EXPECT_TRUE(Runner.done());
  // Per iteration: fetch + compute + acquire + update + release + poll;
  // plus the final failed fetch.
  const Nanos PerIter = CM.SchedFetchNanos + B.ComputeCost + CM.AcquireNanos +
                        CM.UpdateNanos + CM.ReleaseNanos + CM.TimerReadNanos;
  EXPECT_EQ(R.EffectiveNanos, 4 * PerIter + CM.SchedFetchNanos);
  EXPECT_EQ(R.Stats.AcquireReleasePairs, 4u);
  EXPECT_EQ(R.Stats.FailedAcquires, 0u);
  EXPECT_EQ(R.Stats.WaitNanos, 0);
  EXPECT_EQ(R.Stats.LockOpNanos,
            4 * (CM.AcquireNanos + CM.ReleaseNanos));
  // Machine advanced by effective + barrier.
  EXPECT_EQ(Machine.now(), R.EffectiveNanos + CM.BarrierNanos);
}

TEST(SimTest, DisjointLocksScaleLinearly) {
  ToyWorkload W;
  CostModel CM;

  auto RunWith = [&](unsigned Procs) {
    ToyBinding B;
    B.Iterations = 64;
    B.Objects = 64;
    SimMachine Machine(Procs, CM);
    SimSectionRunner Runner(Machine, B, {SimVersion{"only", W.Entry}},
                            false);
    const IntervalReport R = Runner.runInterval(0, Unbounded);
    EXPECT_TRUE(R.Finished);
    EXPECT_EQ(R.Stats.FailedAcquires, 0u);
    return R.EffectiveNanos;
  };

  const Nanos T1 = RunWith(1);
  const Nanos T8 = RunWith(8);
  const double Speedup =
      static_cast<double>(T1) / static_cast<double>(T8);
  EXPECT_GT(Speedup, 6.5);
  EXPECT_LE(Speedup, 8.01);
}

TEST(SimTest, SharedLockSerializesAndCountsWaiting) {
  ToyWorkload W;
  CostModel CM;
  ToyBinding B;
  B.Iterations = 32;
  B.SharedLock = true;
  // Make the critical section dominate: the update runs under the lock.
  B.ComputeCost = 1000; // Tiny compute outside the lock.
  SimMachine Machine(4, CM);
  SimSectionRunner Runner(Machine, B, {SimVersion{"only", W.Entry}}, false);
  const IntervalReport R = Runner.runInterval(0, Unbounded);
  EXPECT_TRUE(R.Finished);
  EXPECT_GT(R.Stats.FailedAcquires, 0u);
  EXPECT_GT(R.Stats.WaitNanos, 0);
  EXPECT_EQ(R.Stats.AcquireReleasePairs, 32u);
}

TEST(SimTest, SharedVsPrivateLockWaitingComparison) {
  ToyWorkload W;
  CostModel CM;
  auto Run = [&](bool Shared) {
    ToyBinding B;
    B.Iterations = 64;
    B.SharedLock = Shared;
    SimMachine Machine(8, CM);
    SimSectionRunner Runner(Machine, B, {SimVersion{"only", W.Entry}},
                            false);
    return Runner.runInterval(0, Unbounded).Stats;
  };
  const OverheadStats Private = Run(false);
  const OverheadStats Shared = Run(true);
  EXPECT_EQ(Private.WaitNanos, 0);
  EXPECT_GT(Shared.WaitNanos, 0);
  EXPECT_GT(Shared.totalOverhead(), Private.totalOverhead());
}

TEST(SimTest, DeterministicAcrossRuns) {
  ToyWorkload W;
  ToyBinding B;
  B.Iterations = 40;
  B.SharedLock = true;
  CostModel CM;
  auto Run = [&]() {
    SimMachine Machine(6, CM);
    SimSectionRunner Runner(Machine, B, {SimVersion{"only", W.Entry}},
                            false);
    const IntervalReport R = Runner.runInterval(0, Unbounded);
    return std::make_tuple(R.EffectiveNanos, R.Stats.FailedAcquires,
                           R.Stats.WaitNanos, R.Stats.ExecNanos);
  };
  EXPECT_EQ(Run(), Run());
}

TEST(SimTest, IntervalExpiryHonorsSwitchPoints) {
  ToyWorkload W;
  ToyBinding B;
  B.Iterations = 1000;
  CostModel CM;
  SimMachine Machine(2, CM);
  SimSectionRunner Runner(Machine, B, {SimVersion{"only", W.Entry}}, false);

  // Target much smaller than one iteration: each processor still completes
  // the iteration it started (the potential switch points are iteration
  // boundaries), so the effective interval is about one iteration long.
  const IntervalReport R = Runner.runInterval(0, 1000);
  EXPECT_FALSE(R.Finished);
  EXPECT_FALSE(Runner.done());
  EXPECT_GE(R.EffectiveNanos, static_cast<Nanos>(B.ComputeCost));
  EXPECT_LT(R.EffectiveNanos, 2 * (B.ComputeCost + 50000));
  // Two processors each completed exactly one iteration.
  EXPECT_EQ(R.Stats.AcquireReleasePairs, 2u);
}

TEST(SimTest, ExecTimeSumsProcessors) {
  ToyWorkload W;
  ToyBinding B;
  B.Iterations = 16;
  B.Objects = 16;
  CostModel CM;
  SimMachine Machine(4, CM);
  SimSectionRunner Runner(Machine, B, {SimVersion{"only", W.Entry}}, false);
  const IntervalReport R = Runner.runInterval(0, Unbounded);
  // Four processors ran for about Effective each.
  EXPECT_GT(R.Stats.ExecNanos, 3 * R.EffectiveNanos);
  EXPECT_LE(R.Stats.ExecNanos, 4 * R.EffectiveNanos);
}

TEST(SimTest, ResetRestartsSection) {
  ToyWorkload W;
  ToyBinding B;
  B.Iterations = 4;
  SimMachine Machine(1, CostModel{});
  SimSectionRunner Runner(Machine, B, {SimVersion{"only", W.Entry}}, false);
  EXPECT_TRUE(Runner.runInterval(0, Unbounded).Finished);
  EXPECT_TRUE(Runner.done());
  Runner.reset();
  EXPECT_FALSE(Runner.done());
  EXPECT_TRUE(Runner.runInterval(0, Unbounded).Finished);
}

TEST(SimTest, InstrumentationAddsLockCost) {
  ToyWorkload W;
  ToyBinding B;
  B.Iterations = 8;
  CostModel CM;
  auto Run = [&](bool Instrumented) {
    SimMachine Machine(1, CM);
    SimSectionRunner Runner(Machine, B, {SimVersion{"only", W.Entry}},
                            Instrumented);
    return Runner.runInterval(0, Unbounded).EffectiveNanos;
  };
  const Nanos Plain = Run(false);
  const Nanos Instr = Run(true);
  EXPECT_EQ(Instr - Plain, 8 * 2 * CM.InstrumentNanos);
}

TEST(SimTest, EmptySectionFinishesImmediately) {
  ToyWorkload W;
  ToyBinding B;
  B.Iterations = 0;
  SimMachine Machine(4, CostModel{});
  SimSectionRunner Runner(Machine, B, {SimVersion{"only", W.Entry}}, false);
  EXPECT_TRUE(Runner.done());
  const IntervalReport R = Runner.runInterval(0, Unbounded);
  EXPECT_TRUE(R.Finished);
  EXPECT_EQ(R.Stats.AcquireReleasePairs, 0u);
}

TEST(SimTest, ZeroFailedAcquireCostRunsToCompletion) {
  // Regression: FailedAcquireNanos=0 used to divide by zero (SIGFPE) when
  // converting contended waiting time into counted failed acquires. Zero
  // stays a legal configuration; the divisor is clamped instead.
  ToyWorkload W;
  ToyBinding B;
  B.Iterations = 32;
  B.SharedLock = true;
  B.ComputeCost = 1000; // Critical section dominates: real contention.
  CostModel CM;
  CM.FailedAcquireNanos = 0;
  SimMachine Machine(4, CM);
  SimSectionRunner Runner(Machine, B, {SimVersion{"only", W.Entry}}, false);
  const IntervalReport R = Runner.runInterval(0, Unbounded);
  EXPECT_TRUE(R.Finished);
  EXPECT_GT(R.Stats.WaitNanos, 0);
  EXPECT_EQ(R.Stats.AcquireReleasePairs, 32u);
}

TEST(SimTest, ReusedIntervalStateIsBitIdentical) {
  // The per-interval simulation state (processors, locks, ready heap) is
  // reset rather than reallocated. A contended two-interval pass repeated
  // on the same runner after reset() -- and compared against a fresh
  // runner -- must agree bit for bit; any stale lock waiter list or
  // un-reset processor field shows up here.
  ToyWorkload W;
  CostModel CM;
  const Nanos Split = 8 * 150000; // Mid-section: interval 1 parks procs.
  auto TwoIntervals = [&](SimSectionRunner &R) {
    std::array<IntervalReport, 2> Out{R.runInterval(0, Split),
                                      R.runInterval(0, Unbounded)};
    EXPECT_FALSE(Out[0].Finished);
    EXPECT_TRUE(Out[1].Finished);
    return Out;
  };

  ToyBinding B;
  B.Iterations = 64;
  B.SharedLock = true;
  SimMachine Machine(4, CM);
  SimSectionRunner Reused(Machine, B, {SimVersion{"only", W.Entry}}, false);
  const auto First = TwoIntervals(Reused);
  Reused.reset();
  const auto Again = TwoIntervals(Reused);

  SimMachine FreshMachine(4, CM);
  SimSectionRunner Fresh(FreshMachine, B, {SimVersion{"only", W.Entry}},
                         false);
  const auto FreshRun = TwoIntervals(Fresh);

  for (int I = 0; I < 2; ++I) {
    expectReportsIdentical(First[I], Again[I]);
    expectReportsIdentical(First[I], FreshRun[I]);
  }
}

TEST(SimBackendTest, OpsCacheMatchesLiveInterpretation) {
  // The backend attaches per-version emitted-ops caches that survive across
  // section occurrences. A cacheable binding served from the cache (all
  // occurrences after the first hit memoized sequences) must simulate
  // exactly like an uncacheable binding interpreted live every iteration.
  ToyWorkload W;
  ToyBinding CachedB;
  CachedB.Cacheable = true;
  ToyBinding LiveB;
  for (ToyBinding *B : {&CachedB, &LiveB}) {
    B->Iterations = 64;
    B->SharedLock = true;
  }
  SimBackend Cached(4, CostModel{}, false);
  Cached.addSection("S", &CachedB, {SimVersion{"only", W.Entry}});
  SimBackend Live(4, CostModel{}, false);
  Live.addSection("S", &LiveB, {SimVersion{"only", W.Entry}});
  for (int Occurrence = 0; Occurrence < 3; ++Occurrence) {
    auto CR = Cached.beginSection("S");
    auto LR = Live.beginSection("S");
    const IntervalReport A = CR->runInterval(0, Unbounded);
    const IntervalReport B = LR->runInterval(0, Unbounded);
    EXPECT_TRUE(A.Finished);
    expectReportsIdentical(A, B);
  }
}

TEST(SimBackendTest, RegistersAndBeginsSections) {
  ToyWorkload W;
  ToyBinding B;
  B.Iterations = 2;
  SimBackend Backend(2, CostModel{}, false);
  Backend.addSection("S", &B, {SimVersion{"only", W.Entry}});
  auto Runner = Backend.beginSection("S");
  ASSERT_NE(Runner, nullptr);
  EXPECT_EQ(Runner->numVersions(), 1u);
  EXPECT_EQ(Runner->versionLabel(0), "only");
  Backend.runSerial(1000);
  EXPECT_EQ(Backend.now(), 1000);
}

} // namespace
