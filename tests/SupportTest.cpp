//===- tests/SupportTest.cpp - Unit tests for the support layer -----------==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "support/CommandLine.h"
#include "support/Integration.h"
#include "support/Random.h"
#include "support/RootFinding.h"
#include "support/Statistics.h"
#include "support/StringUtils.h"
#include "support/TablePrinter.h"

#include <cmath>
#include <gtest/gtest.h>

using namespace dynfb;

namespace {

// ---------------------------- Random --------------------------------------

TEST(RandomTest, DeterministicStreams) {
  Rng A(123), B(123);
  for (int I = 0; I < 100; ++I)
    EXPECT_EQ(A.next64(), B.next64());
}

TEST(RandomTest, DifferentSeedsDiffer) {
  Rng A(1), B(2);
  int Same = 0;
  for (int I = 0; I < 64; ++I)
    Same += A.next64() == B.next64();
  EXPECT_LT(Same, 4);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng R(7);
  for (int I = 0; I < 1000; ++I) {
    const double X = R.nextDouble();
    EXPECT_GE(X, 0.0);
    EXPECT_LT(X, 1.0);
  }
}

TEST(RandomTest, UniformRespectsBounds) {
  Rng R(11);
  for (int I = 0; I < 1000; ++I) {
    const double X = R.uniform(-3.5, 2.25);
    EXPECT_GE(X, -3.5);
    EXPECT_LT(X, 2.25);
  }
}

TEST(RandomTest, NextBelowIsUnbiasedEnough) {
  Rng R(99);
  int Counts[10] = {};
  for (int I = 0; I < 100000; ++I)
    ++Counts[R.nextBelow(10)];
  for (int C : Counts) {
    EXPECT_GT(C, 9000);
    EXPECT_LT(C, 11000);
  }
}

TEST(RandomTest, GaussianMoments) {
  Rng R(5);
  RunningStat S;
  for (int I = 0; I < 200000; ++I)
    S.add(R.gaussian(2.0, 3.0));
  EXPECT_NEAR(S.mean(), 2.0, 0.05);
  EXPECT_NEAR(S.stddev(), 3.0, 0.05);
}

// ---------------------------- Statistics ----------------------------------

TEST(RunningStatTest, BasicMoments) {
  RunningStat S;
  for (double X : {1.0, 2.0, 3.0, 4.0})
    S.add(X);
  EXPECT_EQ(S.count(), 4u);
  EXPECT_DOUBLE_EQ(S.mean(), 2.5);
  EXPECT_DOUBLE_EQ(S.min(), 1.0);
  EXPECT_DOUBLE_EQ(S.max(), 4.0);
  EXPECT_DOUBLE_EQ(S.sum(), 10.0);
  EXPECT_NEAR(S.variance(), 1.25, 1e-12);
}

TEST(RunningStatTest, MergeMatchesSequential) {
  RunningStat All, A, B;
  Rng R(3);
  for (int I = 0; I < 1000; ++I) {
    const double X = R.uniform(-5, 5);
    All.add(X);
    (I % 2 ? A : B).add(X);
  }
  A.merge(B);
  EXPECT_EQ(A.count(), All.count());
  EXPECT_NEAR(A.mean(), All.mean(), 1e-9);
  EXPECT_NEAR(A.variance(), All.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(A.min(), All.min());
  EXPECT_DOUBLE_EQ(A.max(), All.max());
}

TEST(RunningStatTest, MergeWithEmpty) {
  RunningStat A, Empty;
  A.add(1.0);
  A.merge(Empty);
  EXPECT_EQ(A.count(), 1u);
  Empty.merge(A);
  EXPECT_EQ(Empty.count(), 1u);
  EXPECT_DOUBLE_EQ(Empty.mean(), 1.0);
}

TEST(SeriesSetTest, GetOrCreateAndFind) {
  SeriesSet Set;
  EXPECT_TRUE(Set.empty());
  Set.getOrCreate("A").addPoint(1.0, 2.0);
  Set.getOrCreate("A").addPoint(2.0, 3.0);
  Set.getOrCreate("B").addPoint(0.5, 0.25);
  ASSERT_NE(Set.find("A"), nullptr);
  EXPECT_EQ(Set.find("A")->size(), 2u);
  EXPECT_EQ(Set.find("C"), nullptr);
  EXPECT_EQ(Set.all().size(), 2u);
}

// ---------------------------- RootFinding ---------------------------------

TEST(RootFindingTest, BisectFindsSqrt2) {
  auto F = [](double X) { return X * X - 2.0; };
  auto Root = bisect(F, 0.0, 2.0);
  ASSERT_TRUE(Root.has_value());
  EXPECT_NEAR(Root->X, std::sqrt(2.0), 1e-9);
}

TEST(RootFindingTest, BisectRejectsNoSignChange) {
  auto F = [](double X) { return X * X + 1.0; };
  EXPECT_FALSE(bisect(F, -1.0, 1.0).has_value());
}

TEST(RootFindingTest, BisectAcceptsEndpointRoot) {
  auto F = [](double X) { return X; };
  auto Root = bisect(F, 0.0, 5.0);
  ASSERT_TRUE(Root.has_value());
  EXPECT_DOUBLE_EQ(Root->X, 0.0);
}

TEST(RootFindingTest, NewtonConvergesFast) {
  auto F = [](double X) { return std::exp(X) - 3.0; };
  auto DF = [](double X) { return std::exp(X); };
  auto Root = newtonSafeguarded(F, DF, 1.0, 0.0, 4.0);
  ASSERT_TRUE(Root.has_value());
  EXPECT_NEAR(Root->X, std::log(3.0), 1e-9);
}

// ---------------------------- Integration ---------------------------------

TEST(IntegrationTest, PolynomialExact) {
  auto F = [](double X) { return 3.0 * X * X; };
  EXPECT_NEAR(integrate(F, 0.0, 2.0), 8.0, 1e-8);
}

TEST(IntegrationTest, ReversedBoundsNegate) {
  auto F = [](double X) { return X; };
  EXPECT_NEAR(integrate(F, 1.0, 0.0), -0.5, 1e-9);
}

TEST(IntegrationTest, ExponentialDecay) {
  const double Alpha = 0.065;
  auto F = [&](double T) { return std::exp(-Alpha * T); };
  const double Expected = (1.0 - std::exp(-Alpha * 10.0)) / Alpha;
  EXPECT_NEAR(integrate(F, 0.0, 10.0), Expected, 1e-8);
}

// ---------------------------- StringUtils ---------------------------------

TEST(StringUtilsTest, Format) {
  EXPECT_EQ(format("%d-%s", 42, "x"), "42-x");
  EXPECT_EQ(format("%.2f", 3.14159), "3.14");
}

TEST(StringUtilsTest, ThousandsSeparator) {
  EXPECT_EQ(withThousandsSep(0), "0");
  EXPECT_EQ(withThousandsSep(999), "999");
  EXPECT_EQ(withThousandsSep(1000), "1,000");
  EXPECT_EQ(withThousandsSep(15471616), "15,471,616");
}

TEST(StringUtilsTest, FormatSeconds) {
  EXPECT_EQ(formatSeconds(0.5), "500.00 ms");
  EXPECT_EQ(formatSeconds(2.0), "2.00 s");
  EXPECT_EQ(formatSeconds(5e-6), "5.0 us");
}

// ---------------------------- TablePrinter --------------------------------

TEST(TablePrinterTest, RenderTextAligned) {
  Table T("Demo");
  T.setHeader({"Version", "1", "16"});
  T.addRow({"Original", "217.2", "15.64"});
  T.addRow({"Aggressive", "149.9", "12.87"});
  const std::string Text = T.renderText();
  EXPECT_NE(Text.find("Demo"), std::string::npos);
  EXPECT_NE(Text.find("Original"), std::string::npos);
  EXPECT_NE(Text.find("15.64"), std::string::npos);
}

TEST(TablePrinterTest, RenderCsvEscapes) {
  Table T("T");
  T.setHeader({"a", "b"});
  T.addRow({"x,y", "has \"quote\""});
  const std::string Csv = T.renderCsv();
  EXPECT_NE(Csv.find("\"x,y\""), std::string::npos);
  EXPECT_NE(Csv.find("\"has \"\"quote\"\"\""), std::string::npos);
}

TEST(TablePrinterTest, SeriesCsv) {
  SeriesSet Set;
  Set.getOrCreate("Original").addPoint(1.5, 0.25);
  const std::string Csv = renderSeriesCsv(Set, "time", "overhead");
  EXPECT_NE(Csv.find("series,time,overhead"), std::string::npos);
  EXPECT_NE(Csv.find("Original,1.5,0.25"), std::string::npos);
}

// ---------------------------- CommandLine ---------------------------------

TEST(CommandLineTest, ParsesForms) {
  const char *Argv[] = {"prog", "--a=1",    "--b", "2",
                        "pos",  "--flag", "--d=x y"};
  CommandLine CL(7, Argv);
  EXPECT_EQ(CL.getInt("a", 0), 1);
  EXPECT_EQ(CL.getInt("b", 0), 2);
  EXPECT_TRUE(CL.getBool("flag", false));
  EXPECT_EQ(CL.getString("d", ""), "x y");
  ASSERT_EQ(CL.positional().size(), 1u);
  EXPECT_EQ(CL.positional()[0], "pos");
}

TEST(CommandLineTest, DefaultsWhenAbsent) {
  const char *Argv[] = {"prog"};
  CommandLine CL(1, Argv);
  EXPECT_EQ(CL.getInt("n", 42), 42);
  EXPECT_DOUBLE_EQ(CL.getDouble("x", 2.5), 2.5);
  EXPECT_FALSE(CL.getBool("flag", false));
  EXPECT_FALSE(CL.has("n"));
}

TEST(CommandLineTest, UnqueriedFlagsDetected) {
  const char *Argv[] = {"prog", "--used=1", "--typo=2"};
  CommandLine CL(3, Argv);
  (void)CL.getInt("used", 0);
  const auto Unqueried = CL.unqueriedFlags();
  ASSERT_EQ(Unqueried.size(), 1u);
  EXPECT_EQ(Unqueried[0], "typo");
}

} // namespace
