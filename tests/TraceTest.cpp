//===- tests/TraceTest.cpp - Simulator tracing tests ------------------------=//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/water/WaterApp.h"
#include "ir/Builder.h"
#include "sim/SectionSim.h"
#include "sim/Trace.h"

#include <gtest/gtest.h>
#include <limits>

using namespace dynfb;
using namespace dynfb::ir;
using namespace dynfb::rt;
using namespace dynfb::sim;

namespace {

constexpr Nanos Unbounded = std::numeric_limits<Nanos>::max() / 4;

/// Iterations: compute; acquire(this); update; release(this).
struct TraceWorkload {
  Module M{"tw"};
  Method *Entry = nullptr;

  TraceWorkload() {
    ClassDecl *C = M.createClass("c");
    const unsigned F = C->addField("f");
    Entry = M.createMethod("work", C);
    MethodBuilder B(M, Entry);
    B.compute();
    B.acquire(Receiver::thisObj());
    B.update(Receiver::thisObj(), F, BinOp::Add, M.exprConst(1.0));
    B.release(Receiver::thisObj());
  }
};

class TraceBinding final : public DataBinding {
public:
  uint64_t Iterations = 32;
  bool SharedLock = true;
  Nanos ComputeCost = 50000;

  uint64_t iterationCount() const override { return Iterations; }
  uint32_t objectCount() const override { return 8; }
  ObjectId thisObject(uint64_t Iter) const override {
    return SharedLock ? 0 : static_cast<ObjectId>(Iter % 8);
  }
  std::vector<ObjRef> sectionArgs(uint64_t) const override { return {}; }
  ObjectId elementOf(ArrayId, uint64_t, const LoopCtx &) const override {
    return 0;
  }
  uint64_t tripCount(unsigned, const LoopCtx &) const override { return 1; }
  Nanos computeNanos(unsigned, const LoopCtx &) const override {
    return ComputeCost;
  }
};

TEST(TraceTest, WorkConservation) {
  // Every processor's interval time decomposes exactly into compute +
  // lock ops + waiting + dispatch/poll overhead.
  TraceWorkload W;
  TraceBinding B;
  SimMachine Machine(4, CostModel::dashLike());
  SimSectionRunner Runner(Machine, B, {SimVersion{"v", W.Entry}}, false);
  IntervalTrace Trace;
  Runner.attachTrace(&Trace);
  const IntervalReport R = Runner.runInterval(0, Unbounded);

  ASSERT_EQ(Trace.Procs.size(), 4u);
  Nanos TotalDecomposed = 0;
  for (const auto &P : Trace.Procs)
    TotalDecomposed += P.total();
  EXPECT_EQ(TotalDecomposed, R.Stats.ExecNanos);
}

TEST(TraceTest, TraceMatchesStats) {
  TraceWorkload W;
  TraceBinding B;
  SimMachine Machine(4, CostModel::dashLike());
  SimSectionRunner Runner(Machine, B, {SimVersion{"v", W.Entry}}, false);
  IntervalTrace Trace;
  Runner.attachTrace(&Trace);
  const IntervalReport R = Runner.runInterval(0, Unbounded);

  Nanos Wait = 0, LockOp = 0, Compute = 0;
  uint64_t Iters = 0;
  for (const auto &P : Trace.Procs) {
    Wait += P.WaitNanos;
    LockOp += P.LockOpNanos;
    Compute += P.ComputeNanos;
    Iters += P.Iterations;
  }
  EXPECT_EQ(Wait, R.Stats.WaitNanos);
  EXPECT_EQ(LockOp, R.Stats.LockOpNanos);
  EXPECT_EQ(Iters, B.Iterations);
  // Compute equals iterations * (kernel + one update).
  EXPECT_EQ(Compute,
            static_cast<Nanos>(B.Iterations) *
                (B.ComputeCost + Machine.costs().UpdateNanos));
}

TEST(TraceTest, LockSummaryIdentifiesContendedLock) {
  TraceWorkload W;
  TraceBinding B;
  B.SharedLock = true;
  B.ComputeCost = 500; // Lock-dominated: heavy contention on object 0.
  SimMachine Machine(4, CostModel::dashLike());
  SimSectionRunner Runner(Machine, B, {SimVersion{"v", W.Entry}}, false);
  IntervalTrace Trace;
  Runner.attachTrace(&Trace);
  Runner.runInterval(0, Unbounded);

  const auto Hot = Trace.hottestLocks();
  ASSERT_FALSE(Hot.empty());
  EXPECT_EQ(Hot[0].first, 0u);
  EXPECT_EQ(Hot[0].second.Acquires, B.Iterations);
  EXPECT_GT(Hot[0].second.Contended, 0u);
  EXPECT_GT(Hot[0].second.WaitNanos, 0);
}

TEST(TraceTest, HottestLocksBreaksWaitTiesByObjectId) {
  // Equal waiting times must order by ascending object id, so the table
  // (and the trace exporter built on it) renders deterministically.
  IntervalTrace Trace;
  for (ObjectId Obj : {ObjectId(9), ObjectId(2), ObjectId(5)})
    Trace.Locks[Obj].Acquires = 1;
  Trace.Locks[9].WaitNanos = 500;
  Trace.Locks[2].WaitNanos = 500;
  Trace.Locks[5].WaitNanos = 900;

  const auto Hot = Trace.hottestLocks();
  ASSERT_EQ(Hot.size(), 3u);
  EXPECT_EQ(Hot[0].first, 5u); // Most waiting first.
  EXPECT_EQ(Hot[1].first, 2u); // Tie on waiting: lower id wins.
  EXPECT_EQ(Hot[2].first, 9u);
}

TEST(TraceTest, NoContentionWithPrivateLocks) {
  TraceWorkload W;
  TraceBinding B;
  B.SharedLock = false;
  SimMachine Machine(4, CostModel::dashLike());
  SimSectionRunner Runner(Machine, B, {SimVersion{"v", W.Entry}}, false);
  IntervalTrace Trace;
  Runner.attachTrace(&Trace);
  Runner.runInterval(0, Unbounded);
  for (const auto &[Obj, S] : Trace.Locks) {
    (void)Obj;
    EXPECT_EQ(S.Contended, 0u);
    EXPECT_EQ(S.WaitNanos, 0);
  }
}

TEST(TraceTest, RenderTextMentionsProcsAndLocks) {
  TraceWorkload W;
  TraceBinding B;
  SimMachine Machine(2, CostModel::dashLike());
  SimSectionRunner Runner(Machine, B, {SimVersion{"v", W.Entry}}, false);
  IntervalTrace Trace;
  Runner.attachTrace(&Trace);
  Runner.runInterval(0, Unbounded);
  const std::string Text = Trace.renderText();
  EXPECT_NE(Text.find("proc  0"), std::string::npos);
  EXPECT_NE(Text.find("lock 0"), std::string::npos);
}

TEST(TraceTest, WaterPotengAggressiveBlamesGlobalAccumulator) {
  // The trace should point at the global accumulator (object id =
  // NumMolecules) as the false-exclusion culprit of the Aggressive POTENG
  // version.
  apps::water::WaterConfig Config;
  Config.NumMolecules = 32;
  apps::water::WaterApp App(Config);
  const auto *VS = App.program().find("POTENG");
  SimMachine Machine(8, CostModel::dashLike());
  SimSectionRunner Runner(
      Machine, App.binding("POTENG"),
      {SimVersion{"Aggressive",
                  VS->versionFor(xform::PolicyKind::Aggressive).Entry}},
      false);
  IntervalTrace Trace;
  Runner.attachTrace(&Trace);
  Runner.runInterval(0, Unbounded);

  const auto Hot = Trace.hottestLocks();
  ASSERT_FALSE(Hot.empty());
  EXPECT_EQ(Hot[0].first, Config.NumMolecules); // The accumulator object.
  EXPECT_GT(Hot[0].second.Contended, 0u);
}

} // namespace
