//===- tests/AppsTest.cpp - Unit tests for the benchmark applications -----==//
//
// Part of the dynfb project (PLDI 1997 "Dynamic Feedback" reproduction).
//
//===----------------------------------------------------------------------===//

#include "apps/barnes_hut/BarnesHutApp.h"
#include "apps/barnes_hut/Octree.h"
#include "apps/kvserve/KvServeApp.h"
#include "apps/string_tomo/StringApp.h"
#include "apps/water/WaterApp.h"
#include "support/Random.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <set>
#include <gtest/gtest.h>

using namespace dynfb;
using namespace dynfb::apps;

namespace {

// ---------------------------- Octree --------------------------------------

TEST(OctreeTest, RootMassEqualsTotalMass) {
  auto Bodies = bh::makePlummerBodies(256, 1);
  bh::Octree Tree(Bodies);
  double Total = 0;
  for (const bh::Body &B : Bodies)
    Total += B.Mass;
  EXPECT_NEAR(Tree.rootMass(), Total, 1e-9);
}

TEST(OctreeTest, ThetaZeroMatchesBruteForce) {
  // With theta = 0 every cell is opened, so the traversal degenerates to
  // the exact pairwise sum.
  auto Bodies = bh::makePlummerBodies(64, 2);
  bh::Octree Tree(Bodies);
  const double Eps = 0.05;
  for (uint32_t I = 0; I < 8; ++I) {
    const bh::ForceResult F = Tree.computeForce(I, 0.0, Eps);
    EXPECT_EQ(F.Interactions, Bodies.size() - 1);
    bh::Vec3 Acc;
    double Phi = 0;
    for (uint32_t J = 0; J < Bodies.size(); ++J) {
      if (J == I)
        continue;
      const bh::Vec3 D = Bodies[J].Pos - Bodies[I].Pos;
      const double R2 = D.norm2() + Eps * Eps;
      const double R = std::sqrt(R2);
      Acc += D * (Bodies[J].Mass / (R2 * R));
      Phi -= Bodies[J].Mass / R;
    }
    EXPECT_NEAR(F.Acc.X, Acc.X, 1e-9);
    EXPECT_NEAR(F.Acc.Y, Acc.Y, 1e-9);
    EXPECT_NEAR(F.Acc.Z, Acc.Z, 1e-9);
    EXPECT_NEAR(F.Phi, Phi, 1e-9);
  }
}

TEST(OctreeTest, LargerThetaFewerInteractions) {
  auto Bodies = bh::makePlummerBodies(512, 3);
  bh::Octree Tree(Bodies);
  uint64_t Small = 0, Large = 0;
  for (uint32_t I = 0; I < Bodies.size(); ++I) {
    Small += Tree.computeForce(I, 0.3, 0.05).Interactions;
    Large += Tree.computeForce(I, 1.5, 0.05).Interactions;
  }
  EXPECT_LT(Large, Small);
  // Approximation: far fewer than all pairs.
  EXPECT_LT(Large, static_cast<uint64_t>(Bodies.size()) *
                       (Bodies.size() - 1) / 4);
}

TEST(OctreeTest, ApproximationErrorIsSmall) {
  auto Bodies = bh::makePlummerBodies(256, 4);
  bh::Octree Tree(Bodies);
  const double Eps = 0.05;
  for (uint32_t I = 0; I < 16; ++I) {
    const bh::ForceResult Exact = Tree.computeForce(I, 0.0, Eps);
    const bh::ForceResult Approx = Tree.computeForce(I, 0.8, Eps);
    const double Scale = std::sqrt(Exact.Acc.norm2()) + 1e-12;
    const bh::Vec3 D = Exact.Acc - Approx.Acc;
    EXPECT_LT(std::sqrt(D.norm2()) / Scale, 0.05)
        << "body " << I << " relative force error too large";
  }
}

TEST(OctreeTest, PlummerBodiesDeterministic) {
  auto A = bh::makePlummerBodies(64, 9);
  auto B = bh::makePlummerBodies(64, 9);
  for (size_t I = 0; I < A.size(); ++I) {
    EXPECT_EQ(A[I].Pos.X, B[I].Pos.X);
    EXPECT_EQ(A[I].Pos.Y, B[I].Pos.Y);
  }
}

// ---------------------------- Barnes-Hut app -------------------------------

TEST(BarnesHutAppTest, WorkloadAndScheduleShape) {
  bh::BarnesHutConfig Config;
  Config.NumBodies = 256;
  bh::BarnesHutApp App(Config);
  EXPECT_EQ(App.interactionCounts().size(), 256u);
  EXPECT_GT(App.totalInteractions(), 0u);
  const rt::Schedule Sched = App.schedule();
  ASSERT_EQ(Sched.size(), 4u); // (serial, FORCES) x 2
  EXPECT_EQ(Sched[0].K, rt::Phase::Kind::Serial);
  EXPECT_EQ(Sched[1].K, rt::Phase::Kind::Parallel);
  EXPECT_EQ(Sched[1].SectionName, "FORCES");
}

TEST(BarnesHutAppTest, BindingIsConsistent) {
  bh::BarnesHutConfig Config;
  Config.NumBodies = 128;
  bh::BarnesHutApp App(Config);
  const rt::DataBinding &B = App.binding("FORCES");
  EXPECT_EQ(B.iterationCount(), 128u);
  EXPECT_EQ(B.objectCount(), 128u);
  EXPECT_EQ(B.thisObject(17), 17u);
  rt::LoopCtx Ctx;
  Ctx.Iter = 5;
  EXPECT_EQ(B.tripCount(0 /* the only loop */, Ctx),
            App.interactionCounts()[5]);
}

TEST(BarnesHutAppTest, SectionStatsMatchInteractionTotals) {
  bh::BarnesHutConfig Config;
  Config.NumBodies = 128;
  bh::BarnesHutApp App(Config);
  const rt::CostModel CM = rt::CostModel::dashLike();
  const SectionStats Stats = App.sectionStats("FORCES", CM);
  EXPECT_EQ(Stats.Iterations, 128u);
  // Serial compute: interactions * (kernel + 2 updates).
  const double Expected =
      rt::nanosToSeconds(static_cast<rt::Nanos>(App.totalInteractions()) *
                         (Config.InteractNanos + 2 * CM.UpdateNanos));
  EXPECT_NEAR(Stats.MeanSectionSeconds, Expected, 1e-9);
}

TEST(BarnesHutAppTest, ScaleShrinksWorkload) {
  bh::BarnesHutConfig Config;
  Config.scale(0.25);
  EXPECT_EQ(Config.NumBodies, 4096u);
  Config.NumBodies = 10;
  Config.scale(0.001);
  EXPECT_GE(Config.NumBodies, 16u); // Floor.
}

// ---------------------------- Water app ------------------------------------

TEST(WaterAppTest, PartnersAndSchedule) {
  water::WaterConfig Config;
  Config.NumMolecules = 16;
  water::WaterApp App(Config);
  const rt::Schedule Sched = App.schedule();
  // Per timestep: serial, INTERF, serial, POTENG.
  ASSERT_EQ(Sched.size(), Config.Timesteps * 4);
  EXPECT_EQ(Sched[1].SectionName, "INTERF");
  EXPECT_EQ(Sched[3].SectionName, "POTENG");
  // The serial halves sum to the configured serial phase.
  EXPECT_EQ(Sched[0].SerialNanos + Sched[2].SerialNanos,
            Config.SerialPhaseNanos);
}

TEST(WaterAppTest, PotengBindingHasGlobalAccumulator) {
  water::WaterConfig Config;
  Config.NumMolecules = 16;
  water::WaterApp App(Config);
  const rt::DataBinding &B = App.binding("POTENG");
  EXPECT_EQ(B.objectCount(), 17u); // Molecules + the accumulator object.
  const auto Args = B.sectionArgs(0);
  ASSERT_EQ(Args.size(), 2u);
  EXPECT_TRUE(Args[0].IsArray);
  EXPECT_FALSE(Args[1].IsArray);
  EXPECT_EQ(Args[1].Id, 16u);
}

TEST(WaterAppTest, NeighborListsAreRealAndConsistent) {
  water::WaterConfig Config;
  Config.NumMolecules = 64;
  water::WaterApp App(Config);
  const water::MolecularSystem &Sys = App.system();
  ASSERT_EQ(Sys.Neighbors.size(), 64u);
  EXPECT_GT(Sys.CutoffRadius, 0.0);

  // Every listed pair is within the cutoff and appears exactly once.
  const double Rc2 = Sys.CutoffRadius * Sys.CutoffRadius * (1.0 + 1e-9);
  std::set<std::pair<uint32_t, uint32_t>> Seen;
  for (uint32_t I = 0; I < Sys.Neighbors.size(); ++I)
    for (uint32_t J : Sys.Neighbors[I]) {
      const auto &A = Sys.Positions[I];
      const auto &B = Sys.Positions[J];
      const double DX = A.X - B.X, DY = A.Y - B.Y, DZ = A.Z - B.Z;
      EXPECT_LE(DX * DX + DY * DY + DZ * DZ, Rc2);
      const auto Key = std::minmax(I, J);
      EXPECT_TRUE(Seen.insert({Key.first, Key.second}).second)
          << "pair listed twice";
    }

  // The binding serves the same lists.
  const rt::DataBinding &B = App.binding("INTERF");
  rt::LoopCtx Ctx;
  Ctx.Iter = 5;
  ASSERT_EQ(B.tripCount(0 /*unused*/, Ctx), Sys.Neighbors[5].size());
}

TEST(WaterAppTest, CutoffCalibrationHitsTarget) {
  water::WaterConfig Config;
  Config.NumMolecules = 256;
  Config.TargetMeanNeighbors = 40.0;
  water::WaterApp App(Config);
  const double Mean =
      static_cast<double>(App.system().totalPairs()) / 256.0;
  EXPECT_NEAR(Mean, 40.0, 4.0);
}

TEST(WaterAppTest, HalfListsAreBalanced) {
  water::WaterConfig Config;
  Config.NumMolecules = 256;
  water::WaterApp App(Config);
  const water::MolecularSystem &Sys = App.system();
  const double Mean =
      static_cast<double>(Sys.totalPairs()) /
      static_cast<double>(Sys.Neighbors.size());
  size_t MaxLen = 0;
  for (const auto &L : Sys.Neighbors)
    MaxLen = std::max(MaxLen, L.size());
  // No molecule carries more than a few times the average (the balanced
  // pair assignment prevents the triangular skew of naive half-lists).
  EXPECT_LT(static_cast<double>(MaxLen), 3.0 * Mean + 8.0);
}

// ---------------------------- String app -----------------------------------

TEST(StringAppTest, DdaCellCounts) {
  // Horizontal ray: crosses exactly W cells.
  EXPECT_EQ(string_tomo::ddaCellCount(64, 64, 10.2, 10.2), 64u);
  // One row crossing adds one cell.
  EXPECT_EQ(string_tomo::ddaCellCount(64, 64, 10.2, 11.4), 65u);
  // Deep diagonal.
  EXPECT_EQ(string_tomo::ddaCellCount(64, 64, 0.5, 63.5), 64u + 63u);
  // Out-of-grid depths clamp.
  EXPECT_EQ(string_tomo::ddaCellCount(64, 64, -5.0, 1000.0), 64u + 63u);
  // Minimal grid.
  EXPECT_EQ(string_tomo::ddaCellCount(1, 1, 0.0, 0.0), 1u);
}

TEST(StringAppTest, DdaCellCountMatchesBruteForceMarch) {
  // Cross-check the closed-form crossing count against an actual march
  // along the ray in tiny steps, counting distinct cells visited.
  const uint32_t W = 32, H = 32;
  Rng R(77);
  for (int Trial = 0; Trial < 50; ++Trial) {
    const double Z0 = R.uniform(0.0, H - 1e-6);
    const double Z1 = R.uniform(0.0, H - 1e-6);
    // March from (0, Z0) to (W, Z1) in cell units.
    std::set<std::pair<int, int>> Cells;
    const int Steps = 200000;
    for (int S = 0; S <= Steps; ++S) {
      const double T = static_cast<double>(S) / Steps;
      const double X = T * (W - 1e-9);
      const double Z = Z0 + T * (Z1 - Z0);
      Cells.insert({static_cast<int>(X), static_cast<int>(Z)});
    }
    EXPECT_EQ(string_tomo::ddaCellCount(W, H, Z0, Z1), Cells.size())
        << "Z0=" << Z0 << " Z1=" << Z1;
  }
}

TEST(StringAppTest, RaysAreRealistic) {
  string_tomo::StringConfig Config;
  Config.NumRays = 64;
  string_tomo::StringApp App(Config);
  ASSERT_EQ(App.rays().size(), 64u);
  for (const string_tomo::Ray &R : App.rays()) {
    EXPECT_GE(R.Segments, Config.GridW);
    EXPECT_LE(R.Segments, Config.GridW + Config.GridH);
  }
  EXPECT_EQ(App.totalSegments(),
            [&] {
              uint64_t S = 0;
              for (const auto &R : App.rays())
                S += R.Segments;
              return S;
            }());
}

TEST(StringAppTest, SingleSharedModelObject) {
  string_tomo::StringConfig Config;
  Config.NumRays = 16;
  string_tomo::StringApp App(Config);
  const rt::DataBinding &B = App.binding("TRACE");
  EXPECT_EQ(B.objectCount(), 1u);
  EXPECT_EQ(B.iterationCount(), 16u);
}

TEST(StringAppTest, TraceCostDominatedByRayTracing) {
  string_tomo::StringConfig Config;
  Config.NumRays = 4;
  string_tomo::StringApp App(Config);
  const rt::DataBinding &B = App.binding("TRACE");
  rt::LoopCtx Ctx;
  Ctx.Iter = 0;
  // The whole-ray trace kernel costs Segments * TraceCellNanos.
  const rt::Nanos TraceCost = B.computeNanos(0, Ctx);
  EXPECT_EQ(TraceCost, static_cast<rt::Nanos>(App.rays()[0].Segments) *
                           Config.TraceCellNanos);
}

// ---------------------------- KV serving app -------------------------------

TEST(KvServeAppTest, WorkloadAndScheduleShape) {
  kvserve::KvServeConfig Config;
  Config.RequestsPerWindow = 128;
  Config.Windows = 4;
  kvserve::KvServeApp App(Config);
  const rt::Schedule Sched = App.schedule();
  ASSERT_EQ(Sched.size(), Config.Windows * 2u); // (ingest, SERVE) per window.
  for (unsigned W = 0; W < Config.Windows; ++W) {
    EXPECT_EQ(Sched[2 * W].K, rt::Phase::Kind::Serial);
    EXPECT_EQ(Sched[2 * W].SerialNanos, Config.IngestPhaseNanos);
    EXPECT_EQ(Sched[2 * W + 1].K, rt::Phase::Kind::Parallel);
    EXPECT_EQ(Sched[2 * W + 1].SectionName,
              kvserve::KvServeApp::ServeSection);
  }
  EXPECT_EQ(App.requests().size(), Config.RequestsPerWindow);
  EXPECT_GT(App.totalOps(), App.requests().size()); // Multi-op requests.
}

TEST(KvServeAppTest, BindingIsConsistent) {
  kvserve::KvServeConfig Config;
  Config.RequestsPerWindow = 128;
  kvserve::KvServeApp App(Config);
  const rt::DataBinding &B =
      App.binding(kvserve::KvServeApp::ServeSection);
  EXPECT_EQ(B.iterationCount(), App.requests().size());
  EXPECT_EQ(B.objectCount(), Config.NumShards);
  for (const kvserve::Request &R : App.requests()) {
    EXPECT_LT(R.Key, Config.NumKeys);
    EXPECT_EQ(R.Shard, R.Key % Config.NumShards);
    EXPECT_GE(R.Ops, 1u);
  }
}

TEST(KvServeAppTest, ZipfKeysAreSkewedAndDeterministic) {
  const auto A = kvserve::zipfKeys(1024, 1.6, 8192, 7);
  const auto B = kvserve::zipfKeys(1024, 1.6, 8192, 7);
  EXPECT_EQ(A, B);
  EXPECT_NE(A, kvserve::zipfKeys(1024, 1.6, 8192, 8));

  // Zipf(1.6): the head of the key space absorbs most of the draws. Compare
  // the hottest key's share against the uniform expectation (8 draws/key).
  std::map<uint32_t, unsigned> Freq;
  for (uint32_t K : A)
    ++Freq[K];
  unsigned Hottest = 0;
  for (const auto &[K, N] : Freq)
    Hottest = std::max(Hottest, N);
  EXPECT_GT(Hottest, 8192u / 1024u * 50u);
}

TEST(KvServeAppTest, ScaleShrinksWorkloadWithFloor) {
  kvserve::KvServeConfig Config;
  const auto BaseRequests = Config.RequestsPerWindow;
  const auto BaseIngest = Config.IngestPhaseNanos;
  Config.scale(0.5);
  EXPECT_EQ(Config.RequestsPerWindow, BaseRequests / 2);
  EXPECT_EQ(Config.IngestPhaseNanos, BaseIngest / 2);
  EXPECT_EQ(Config.Windows, 8u); // The horizon never shrinks.
  Config.scale(1e-6);
  EXPECT_GE(Config.RequestsPerWindow, 16u); // Floor.
}

} // namespace
